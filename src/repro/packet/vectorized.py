"""Vectorized checksum folds and batched RX-frame validation.

The frame-train lane (:mod:`repro.core.train`) services a whole batch of
frames in one kernel event; the per-frame arithmetic -- RFC 1071 word
sums, Ethernet/IPv4/UDP field extraction, RX checksum validation -- is
hoisted here so it runs over contiguous byte buffers instead of one
Python-level loop iteration per frame.

Two backends, selected at import time:

* **numpy** (when available): buffers are grouped by (padded) length,
  concatenated, and reduced as a ``(n, length)`` matrix of big-endian
  16-bit words -- one C-level ``sum``/``any`` per group;
* **stdlib fallback**: :mod:`array`-of-``'H'`` word views (byteswapped
  on little-endian hosts) with :func:`sum`, no per-word Python loop.

Every function is bit-for-bit equivalent to mapping its scalar
counterpart in :mod:`repro.packet.checksum` /
:mod:`repro.engines.checksum_engine` over the batch; the equivalence
suite enforces this.
"""

from __future__ import annotations

import struct
import sys
from array import array
from typing import List, Optional, Sequence, Tuple

try:  # pragma: no cover - exercised via whichever backend is present
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

from repro.packet.headers import IP_PROTO_UDP

__all__ = [
    "HAVE_NUMPY",
    "fold_many",
    "verify_many",
    "rx_verdicts_many",
]

_LITTLE_ENDIAN = sys.byteorder == "little"
_PSEUDO = struct.Struct("!BBH")
_UDP = struct.Struct("!HHHH")

#: Ethernet (14) + IPv4 (20) bytes that must be present before the IPv4
#: header checksum can even be located.
_MIN_PARSEABLE = 34


def _residues(buffers: Sequence[bytes]) -> List[Tuple[int, bool]]:
    """``(word_sum % 0xFFFF, any_nonzero_byte)`` per buffer.

    The ones'-complement word sum of a big-endian buffer is congruent to
    its big-integer value mod ``0xFFFF`` (``2**16 == 1 mod 0xFFFF``), so
    the residue plus a zero-test reproduces everything
    :func:`repro.packet.checksum.internet_checksum` and
    :func:`~repro.packet.checksum.verify_internet_checksum` derive from
    the raw bytes.  Odd-length buffers are implicitly zero-padded.
    """
    if HAVE_NUMPY:
        return _residues_numpy(buffers)
    return [_residue_one(data) for data in buffers]


def _residue_one(data: bytes) -> Tuple[int, bool]:
    if len(data) % 2:
        data = data + b"\x00"
    if not data:
        return 0, False
    words = array("H", data)
    if _LITTLE_ENDIAN:
        words.byteswap()
    return sum(words) % 0xFFFF, bool(max(data))


def _residues_numpy(buffers: Sequence[bytes]) -> List[Tuple[int, bool]]:
    out: List[Optional[Tuple[int, bool]]] = [None] * len(buffers)
    groups: dict = {}
    for i, data in enumerate(buffers):
        length = len(data)
        if length % 2:
            data = data + b"\x00"
            length += 1
        if length == 0:
            out[i] = (0, False)
            continue
        groups.setdefault(length, ([], []))
        indices, chunks = groups[length]
        indices.append(i)
        chunks.append(data)
    for length, (indices, chunks) in groups.items():
        mat = _np.frombuffer(b"".join(chunks), dtype=_np.uint8)
        mat = mat.reshape(len(chunks), length)
        sums = mat.view(">u2").astype(_np.uint64).sum(axis=1) % 0xFFFF
        nonzero = mat.any(axis=1)
        for row, i in enumerate(indices):
            out[i] = (int(sums[row]), bool(nonzero[row]))
    return out  # type: ignore[return-value]


def fold_many(buffers: Sequence[bytes]) -> List[int]:
    """Batched :func:`repro.packet.checksum.internet_checksum`."""
    results = []
    for residue, nonzero in _residues(buffers):
        if not nonzero:
            results.append(0xFFFF)
            continue
        folded = residue or 0xFFFF
        results.append(~folded & 0xFFFF)
    return results


def verify_many(buffers: Sequence[bytes]) -> List[bool]:
    """Batched :func:`repro.packet.checksum.verify_internet_checksum`."""
    return [nonzero and residue == 0 for residue, nonzero in _residues(buffers)]


def rx_verdicts_many(frames: Sequence[bytes]) -> List[Optional[bool]]:
    """Batched RX checksum verdicts, one per frame.

    Bit-identical to mapping the checksum engine's scalar verdict
    (parse Ethernet + IPv4, verify the IPv4 header checksum, then verify
    any non-zero UDP checksum over the pseudo-header) across ``frames``:
    ``None`` for unparseable frames, else whether every present checksum
    verified.  Field extraction happens on :class:`memoryview` slices at
    fixed wire offsets (the scalar header classes reject exactly the
    same inputs: truncation, non-IPv4, IPv4 options, bad lengths), and
    the checksum folds are batched through :func:`verify_many`.
    """
    verdicts: List[Optional[bool]] = [None] * len(frames)
    # Round 1: IPv4 header checksums of every parseable frame.
    ip_indices: List[int] = []
    ip_buffers: List[bytes] = []
    for i, data in enumerate(frames):
        if len(data) < _MIN_PARSEABLE:
            continue
        version_ihl = data[14]
        if version_ihl != 0x45:  # version 4, IHL 5 (options unsupported)
            continue
        total_length = (data[16] << 8) | data[17]
        if total_length < 20:
            continue
        ip_indices.append(i)
        ip_buffers.append(bytes(data[14:34]))
    ip_ok = verify_many(ip_buffers)
    # Round 2: UDP pseudo-header checksums where the IPv4 layer verified.
    udp_indices: List[int] = []
    udp_buffers: List[bytes] = []
    for i, ok in zip(ip_indices, ip_ok):
        data = frames[i]
        if not ok or data[23] != IP_PROTO_UDP:
            verdicts[i] = ok
            continue
        after_ip = data[34:]
        if len(after_ip) < 8:
            verdicts[i] = False
            continue
        udp_length = (after_ip[4] << 8) | after_ip[5]
        if udp_length < 8:
            verdicts[i] = False
            continue
        checksum = (after_ip[6] << 8) | after_ip[7]
        if checksum == 0:
            verdicts[i] = True
            continue
        pseudo = bytes(data[26:34]) + _PSEUDO.pack(0, IP_PROTO_UDP, udp_length)
        udp_indices.append(i)
        udp_buffers.append(pseudo + bytes(after_ip[:udp_length]))
    for i, ok in zip(udp_indices, verify_many(udp_buffers)):
        verdicts[i] = ok
    return verdicts
