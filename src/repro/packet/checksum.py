"""Checksum algorithms used by the protocol stack.

``internet_checksum`` is the RFC 1071 ones'-complement sum used by IPv4,
UDP and TCP.  ``crc32`` is the IEEE 802.3 CRC used for Ethernet FCS and as
the integrity check of the simulated checksum-offload engine.
"""

from __future__ import annotations


def internet_checksum(data: bytes) -> int:
    """RFC 1071 16-bit ones'-complement checksum of ``data``.

    Odd-length input is implicitly padded with a zero byte, per the RFC.
    Returns the checksum as an integer in [0, 0xFFFF] ready to be stored in
    a header (i.e. already complemented).
    """
    total = 0
    length = len(data)
    # Sum 16-bit big-endian words.
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    # Fold carries.
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def verify_internet_checksum(data: bytes) -> bool:
    """True when ``data`` (with its checksum field in place) sums to zero."""
    total = 0
    length = len(data)
    for i in range(0, length - 1, 2):
        total += (data[i] << 8) | data[i + 1]
    if length % 2:
        total += data[-1] << 8
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return total == 0xFFFF


_CRC32_TABLE = []


def _build_crc_table() -> None:
    poly = 0xEDB88320
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        _CRC32_TABLE.append(crc)


_build_crc_table()


def crc32(data: bytes, seed: int = 0xFFFFFFFF) -> int:
    """IEEE 802.3 CRC-32 (the same polynomial as Ethernet FCS / zlib)."""
    crc = seed
    for byte in data:
        crc = (crc >> 8) ^ _CRC32_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF
