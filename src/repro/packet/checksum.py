"""Checksum algorithms used by the protocol stack.

``internet_checksum`` is the RFC 1071 ones'-complement sum used by IPv4,
UDP and TCP.  ``crc32`` is the IEEE 802.3 CRC used for Ethernet FCS and as
the integrity check of the simulated checksum-offload engine.
"""

from __future__ import annotations

import zlib


def internet_checksum(data: bytes) -> int:
    """RFC 1071 16-bit ones'-complement checksum of ``data``.

    Odd-length input is implicitly padded with a zero byte, per the RFC.
    Returns the checksum as an integer in [0, 0xFFFF] ready to be stored in
    a header (i.e. already complemented).

    The word sum is computed as the big-endian integer value of the data
    reduced mod ``0xFFFF`` (powers of 2**16 are all congruent to 1), which
    keeps the whole computation in C instead of a per-word Python loop.
    The carry-fold of a nonzero sum never yields 0, so a zero residue from
    nonzero data folds to ``0xFFFF``.
    """
    if len(data) % 2:
        data += b"\x00"
    value = int.from_bytes(data, "big")
    if value == 0:
        return 0xFFFF
    folded = value % 0xFFFF
    if folded == 0:
        folded = 0xFFFF
    return ~folded & 0xFFFF


def verify_internet_checksum(data: bytes) -> bool:
    """True when ``data`` (with its checksum field in place) sums to zero."""
    if len(data) % 2:
        data += b"\x00"
    value = int.from_bytes(data, "big")
    # Folded sum == 0xFFFF iff the word sum is a nonzero multiple of 0xFFFF.
    return value != 0 and value % 0xFFFF == 0


_CRC32_TABLE = []


def _build_crc_table() -> None:
    poly = 0xEDB88320
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ poly
            else:
                crc >>= 1
        _CRC32_TABLE.append(crc)


_build_crc_table()


def crc32(data: bytes, seed: int = 0xFFFFFFFF) -> int:
    """IEEE 802.3 CRC-32 (the same polynomial as Ethernet FCS / zlib)."""
    if seed == 0xFFFFFFFF:
        # Identical parameters to zlib's CRC-32; use its C implementation.
        return zlib.crc32(data)
    crc = seed
    for byte in data:
        crc = (crc >> 8) ^ _CRC32_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF
