"""PANIC's lightweight on-chip message header (chain + slack).

Section 3.1.2 of the paper: when the heavyweight RMT pipeline processes a
message it computes the full *chain* of engine destinations and prepends it
as "a lightweight message header"; each engine's local lookup logic then
pops the next hop without another heavyweight traversal.  Section 3.1.3:
the pipeline also computes a per-engine *slack time* carried in the same
header, which orders the per-engine priority queues.

Wire layout (big endian)::

    0      2      3      4       8        16
    +------+------+------+-------+--------+----------------~~~+
    | magic| flags| hops | cursor| slack  | hop entries ...   |
    +------+------+------+-------+--------+----------------~~~+

    magic   : u16, 0xA21C ("PANIC")
    flags   : u8  (bit0 = needs second RMT pass, bit1 = droppable/lossy)
    hops    : u8  number of chain entries
    cursor  : u32 index of the next un-visited entry
    slack   : u64 absolute deadline in picoseconds (scheduler rank)
    entries : hops * u16 engine addresses
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Tuple

from repro.packet.headers import HeaderError

PANIC_MAGIC = 0xA21C

FLAG_NEEDS_RMT = 0x01
FLAG_DROPPABLE = 0x02


@dataclass
class PanicHeader:
    """The parsed form of PANIC's internal chain header."""

    chain: List[int] = field(default_factory=list)
    cursor: int = 0
    slack_ps: int = 0
    needs_rmt: bool = False
    droppable: bool = False

    FIXED_LENGTH = 16
    MAX_HOPS = 255

    def __post_init__(self) -> None:
        if len(self.chain) > self.MAX_HOPS:
            raise HeaderError(f"chain too long: {len(self.chain)} hops")
        for address in self.chain:
            if not 0 <= address <= 0xFFFF:
                raise HeaderError(f"engine address out of range: {address}")
        if not 0 <= self.cursor <= len(self.chain):
            raise HeaderError(
                f"cursor {self.cursor} outside chain of {len(self.chain)} hops"
            )
        if self.slack_ps < 0:
            raise HeaderError(f"negative slack: {self.slack_ps}")

    # ------------------------------------------------------------------
    # Chain traversal
    # ------------------------------------------------------------------

    @property
    def length(self) -> int:
        """Serialized length in bytes."""
        return self.FIXED_LENGTH + 2 * len(self.chain)

    @property
    def exhausted(self) -> bool:
        """True when every hop in the chain has been visited."""
        return self.cursor >= len(self.chain)

    def peek_next_hop(self) -> int:
        """The next engine address without advancing the cursor."""
        if self.exhausted:
            raise HeaderError("chain exhausted; no next hop")
        return self.chain[self.cursor]

    def advance(self) -> int:
        """Consume and return the next engine address."""
        hop = self.peek_next_hop()
        self.cursor += 1
        return hop

    def remaining(self) -> List[int]:
        """Engine addresses not yet visited."""
        return list(self.chain[self.cursor :])

    def extend(self, more_hops: List[int]) -> None:
        """Append hops (used when the RMT pipeline re-resolves a chain)."""
        if len(self.chain) + len(more_hops) > self.MAX_HOPS:
            raise HeaderError("chain extension exceeds maximum hop count")
        for address in more_hops:
            if not 0 <= address <= 0xFFFF:
                raise HeaderError(f"engine address out of range: {address}")
        self.chain.extend(more_hops)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------

    def pack(self) -> bytes:
        flags = (FLAG_NEEDS_RMT if self.needs_rmt else 0) | (
            FLAG_DROPPABLE if self.droppable else 0
        )
        head = struct.pack(
            "!HBBIQ",
            PANIC_MAGIC,
            flags,
            len(self.chain),
            self.cursor,
            self.slack_ps,
        )
        entries = struct.pack(f"!{len(self.chain)}H", *self.chain) if self.chain else b""
        return head + entries

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["PanicHeader", bytes]:
        if len(data) < cls.FIXED_LENGTH:
            raise HeaderError(f"truncated PANIC header: {len(data)} bytes")
        magic, flags, hops, cursor, slack = struct.unpack(
            "!HBBIQ", data[: cls.FIXED_LENGTH]
        )
        if magic != PANIC_MAGIC:
            raise HeaderError(f"bad PANIC magic: {magic:#06x}")
        need = cls.FIXED_LENGTH + 2 * hops
        if len(data) < need:
            raise HeaderError("truncated PANIC chain entries")
        chain = list(struct.unpack(f"!{hops}H", data[cls.FIXED_LENGTH : need])) if hops else []
        header = cls(
            chain=chain,
            cursor=cursor,
            slack_ps=slack,
            needs_rmt=bool(flags & FLAG_NEEDS_RMT),
            droppable=bool(flags & FLAG_DROPPABLE),
        )
        return header, data[need:]

    def copy(self) -> "PanicHeader":
        # The source header already passed __post_init__ validation and
        # every field is copied verbatim, so skip re-validating.
        clone = object.__new__(PanicHeader)
        clone.chain = list(self.chain)
        clone.cursor = self.cursor
        clone.slack_ps = self.slack_ps
        clone.needs_rmt = self.needs_rmt
        clone.droppable = self.droppable
        return clone
