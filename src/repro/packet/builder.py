"""Frame builders and a whole-frame parser.

These helpers assemble byte-accurate Ethernet/IPv4/UDP frames (optionally
carrying KV protocol messages) and parse them back into header objects.
They are used by workload generators, tests and the host model alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.packet.addresses import IPv4Address, MacAddress
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    IP_PROTO_ESP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    EspHeader,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)
from repro.packet.kv import KV_UDP_PORT, KvOpcode, KvRequest, KvResponse
from repro.packet.packet import MessageKind, Packet


@dataclass
class ParsedFrame:
    """All the views a full parse produces (missing layers are ``None``)."""

    eth: EthernetHeader
    ipv4: Optional[Ipv4Header] = None
    udp: Optional[UdpHeader] = None
    tcp: Optional[TcpHeader] = None
    esp: Optional[EspHeader] = None
    payload: bytes = b""

    @property
    def is_kv(self) -> bool:
        """Heuristic: UDP on the well-known KV port."""
        return self.udp is not None and KV_UDP_PORT in (
            self.udp.src_port,
            self.udp.dst_port,
        )

    def kv_request(self) -> KvRequest:
        request, _rest = KvRequest.unpack(self.payload)
        return request

    def kv_response(self) -> KvResponse:
        response, _rest = KvResponse.unpack(self.payload)
        return response


#: Memo of recently parsed frames.  Several engines on a chain parse the
#: same immutable frame bytes; keying by the bytes value (whose hash
#: CPython caches on the object) makes repeat parses a dict hit.  Bounded
#: by wholesale clearing -- entries are tiny and regenerate on demand.
#: Callers must treat returned frames as immutable (they all do: engines
#: build new frames rather than editing parsed ones).
_PARSE_MEMO: dict = {}
_PARSE_MEMO_MAX = 256


def parse_frame(data: bytes) -> ParsedFrame:
    """Parse an Ethernet frame down to the transport payload.

    Unknown EtherTypes stop at L2; unknown IP protocols stop at L3.  ESP
    packets stop at the ESP header (the remainder is ciphertext only the
    IPSec engine can interpret).

    The result is memoized by frame bytes and shared between callers;
    treat it as read-only.
    """
    cached = _PARSE_MEMO.get(data)
    if cached is not None:
        return cached
    parsed = _parse_frame_uncached(data)
    if len(_PARSE_MEMO) >= _PARSE_MEMO_MAX:
        _PARSE_MEMO.clear()
    _PARSE_MEMO[bytes(data)] = parsed
    return parsed


def _parse_frame_uncached(data: bytes) -> ParsedFrame:
    eth, rest = EthernetHeader.unpack(data)
    parsed = ParsedFrame(eth=eth, payload=rest)
    if eth.ethertype != ETHERTYPE_IPV4:
        return parsed
    ipv4, rest = Ipv4Header.unpack(rest)
    parsed.ipv4 = ipv4
    # Respect total_length: the MAC may have padded the frame to 64 bytes.
    l3_payload_len = ipv4.total_length - Ipv4Header.LENGTH
    if l3_payload_len < 0 or l3_payload_len > len(rest):
        raise HeaderError(
            f"IPv4 total_length {ipv4.total_length} inconsistent with frame"
        )
    rest = rest[:l3_payload_len]
    parsed.payload = rest
    if ipv4.protocol == IP_PROTO_UDP:
        udp, rest = UdpHeader.unpack(rest)
        parsed.udp = udp
        parsed.payload = rest[: udp.length - UdpHeader.LENGTH]
    elif ipv4.protocol == IP_PROTO_TCP:
        tcp, rest = TcpHeader.unpack(rest)
        parsed.tcp = tcp
        parsed.payload = rest
    elif ipv4.protocol == IP_PROTO_ESP:
        esp, rest = EspHeader.unpack(rest)
        parsed.esp = esp
        parsed.payload = rest
    return parsed


def frame_checksums_ok(data: bytes) -> bool:
    """Verify the integrity checks a frame carries on the wire.

    Checks the IPv4 header checksum and, when present and non-zero, the
    UDP checksum over the pseudo-header.  Frames without an IPv4 layer
    (or too mangled to parse) return True -- there is nothing to verify,
    and unparseable traffic is the host's problem, not a detected
    corruption.  This is the RX-side detection point the fault-injection
    harness relies on: link bit-flips land here (or at the IPSec ICV) and
    are dropped with accounting instead of propagating.
    """
    from repro.packet.checksum import verify_internet_checksum

    try:
        eth, rest = EthernetHeader.unpack(data)
        if eth.ethertype != ETHERTYPE_IPV4:
            return True
        if len(rest) < Ipv4Header.LENGTH:
            return True
        ip_bytes = rest[: Ipv4Header.LENGTH]
        ipv4, after_ip = Ipv4Header.unpack(rest)
    except HeaderError:
        return True
    if not verify_internet_checksum(ip_bytes):
        return False
    if ipv4.protocol == IP_PROTO_UDP:
        l3_len = ipv4.total_length - Ipv4Header.LENGTH
        if not 0 <= l3_len <= len(after_ip):
            return True
        try:
            udp, _rest = UdpHeader.unpack(after_ip)
        except HeaderError:
            return True
        if udp.checksum != 0 and udp.length <= l3_len:
            datagram = after_ip[: udp.length]
            pseudo = ipv4.pseudo_header(udp.length)
            return verify_internet_checksum(pseudo + datagram)
    return True


def build_eth_frame(
    dst: Union[str, MacAddress],
    src: Union[str, MacAddress],
    payload: bytes,
    ethertype: int = ETHERTYPE_IPV4,
) -> bytes:
    """A raw Ethernet frame (padded to the 64-byte minimum by the MAC)."""
    return EthernetHeader(MacAddress(dst), MacAddress(src), ethertype).pack() + payload


def build_udp_frame(
    *,
    src_mac: Union[str, MacAddress],
    dst_mac: Union[str, MacAddress],
    src_ip: Union[str, IPv4Address],
    dst_ip: Union[str, IPv4Address],
    src_port: int,
    dst_port: int,
    payload: bytes,
    dscp: int = 0,
    ecn: int = 0,
    ttl: int = 64,
    identification: int = 0,
) -> bytes:
    """A full Ethernet/IPv4/UDP frame with valid lengths and checksums."""
    udp_len = UdpHeader.LENGTH + len(payload)
    ipv4 = Ipv4Header(
        src=IPv4Address(src_ip),
        dst=IPv4Address(dst_ip),
        protocol=IP_PROTO_UDP,
        total_length=Ipv4Header.LENGTH + udp_len,
        dscp=dscp,
        ecn=ecn,
        ttl=ttl,
        identification=identification,
    )
    udp = UdpHeader(src_port, dst_port, udp_len)
    eth = EthernetHeader(MacAddress(dst_mac), MacAddress(src_mac), ETHERTYPE_IPV4)
    return eth.pack() + ipv4.pack() + udp.pack_with_checksum(ipv4, payload) + payload


def build_kv_request_frame(
    request: KvRequest,
    *,
    src_mac: Union[str, MacAddress] = "02:00:00:00:00:01",
    dst_mac: Union[str, MacAddress] = "02:00:00:00:00:02",
    src_ip: Union[str, IPv4Address] = "10.0.0.1",
    dst_ip: Union[str, IPv4Address] = "10.0.0.2",
    src_port: int = 40000,
    dscp: int = 0,
    ecn: int = 0,
) -> Packet:
    """Wrap a KV request in a UDP frame and return it as a Packet."""
    frame = build_udp_frame(
        src_mac=src_mac,
        dst_mac=dst_mac,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=src_port,
        dst_port=KV_UDP_PORT,
        payload=request.pack(),
        dscp=dscp,
        ecn=ecn,
        identification=request.request_id & 0xFFFF,
    )
    packet = Packet(frame, MessageKind.ETHERNET)
    packet.meta.tenant = request.tenant
    return packet


def build_kv_response_frame(
    response: KvResponse,
    *,
    src_mac: Union[str, MacAddress] = "02:00:00:00:00:02",
    dst_mac: Union[str, MacAddress] = "02:00:00:00:00:01",
    src_ip: Union[str, IPv4Address] = "10.0.0.2",
    dst_ip: Union[str, IPv4Address] = "10.0.0.1",
    dst_port: int = 40000,
) -> Packet:
    """Wrap a KV response in a UDP frame and return it as a Packet."""
    frame = build_udp_frame(
        src_mac=src_mac,
        dst_mac=dst_mac,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=KV_UDP_PORT,
        dst_port=dst_port,
        payload=response.pack(),
        identification=response.request_id & 0xFFFF,
    )
    packet = Packet(frame, MessageKind.ETHERNET)
    packet.meta.tenant = response.tenant
    return packet
