"""Byte-accurate packet model and protocol stack.

The NIC simulators operate on real bytes: headers serialize to and parse
from wire format, checksums are computed with the real Internet-checksum
algorithm, and offload engines (IPSec, compression, KV cache) transform the
actual payload.  This lets the test suite assert end-to-end functional
correctness, not just timing.

Layers provided:

* :mod:`repro.packet.addresses` -- MAC / IPv4 address values.
* :mod:`repro.packet.headers`   -- Ethernet, IPv4, UDP, TCP, ESP headers.
* :mod:`repro.packet.panic_hdr` -- PANIC's internal chain + slack header.
* :mod:`repro.packet.kv`        -- the key-value application protocol used
  by the paper's DynamoDB-style running example.
* :mod:`repro.packet.packet`    -- the :class:`Packet` container carried
  through simulations (bytes + parsed views + NIC metadata).
* :mod:`repro.packet.builder`   -- convenience constructors for full frames.
"""

from repro.packet.addresses import BROADCAST_MAC, IPv4Address, MacAddress
from repro.packet.checksum import internet_checksum, verify_internet_checksum, crc32
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    ETHERTYPE_PANIC,
    IP_PROTO_ESP,
    IP_PROTO_TCP,
    IP_PROTO_UDP,
    EthernetHeader,
    EspHeader,
    HeaderError,
    Ipv4Header,
    TcpHeader,
    UdpHeader,
)
from repro.packet.kv import KvOpcode, KvRequest, KvResponse, KvStatus, KV_UDP_PORT
from repro.packet.packet import (
    MIN_FRAME_BYTES,
    WIRE_OVERHEAD_BYTES,
    Packet,
    PacketMetadata,
    wire_bits,
)
from repro.packet.panic_hdr import PanicHeader
from repro.packet.vectorized import (
    HAVE_NUMPY,
    fold_many,
    rx_verdicts_many,
    verify_many,
)
from repro.packet.builder import (
    build_eth_frame,
    build_kv_request_frame,
    build_kv_response_frame,
    build_udp_frame,
    frame_checksums_ok,
    parse_frame,
    ParsedFrame,
)

__all__ = [
    "BROADCAST_MAC",
    "EthernetHeader",
    "EspHeader",
    "ETHERTYPE_IPV4",
    "ETHERTYPE_PANIC",
    "HeaderError",
    "IP_PROTO_ESP",
    "IP_PROTO_TCP",
    "IP_PROTO_UDP",
    "IPv4Address",
    "Ipv4Header",
    "KV_UDP_PORT",
    "KvOpcode",
    "KvRequest",
    "KvResponse",
    "KvStatus",
    "MacAddress",
    "MIN_FRAME_BYTES",
    "Packet",
    "PacketMetadata",
    "PanicHeader",
    "ParsedFrame",
    "TcpHeader",
    "UdpHeader",
    "WIRE_OVERHEAD_BYTES",
    "build_eth_frame",
    "build_kv_request_frame",
    "build_kv_response_frame",
    "build_udp_frame",
    "frame_checksums_ok",
    "crc32",
    "fold_many",
    "HAVE_NUMPY",
    "internet_checksum",
    "parse_frame",
    "rx_verdicts_many",
    "verify_internet_checksum",
    "verify_many",
    "wire_bits",
]
