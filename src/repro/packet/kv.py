"""The key-value application protocol for the paper's running example.

Section 2.2 / 3.2 motivate PANIC with a geodistributed multi-tenant
key-value store (DynamoDB-style).  This module defines a compact binary
GET/SET/DELETE protocol carried over UDP, parsed both by the host software
model and by the on-NIC KV-cache engine.

Request wire layout (big endian)::

    opcode:u8  tenant:u16  request_id:u32  key_len:u16  value_len:u32
    key bytes  value bytes

Response wire layout::

    opcode:u8  status:u8  tenant:u16  request_id:u32  value_len:u32
    value bytes
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass
from typing import Tuple

from repro.packet.headers import HeaderError

#: Well-known UDP port the KVS listens on.
KV_UDP_PORT = 11211


class KvOpcode(enum.IntEnum):
    GET = 1
    SET = 2
    DELETE = 3
    RESPONSE = 0x80


class KvStatus(enum.IntEnum):
    OK = 0
    NOT_FOUND = 1
    ERROR = 2


@dataclass
class KvRequest:
    """A client request (GET / SET / DELETE)."""

    opcode: KvOpcode
    tenant: int
    request_id: int
    key: bytes
    value: bytes = b""

    HEADER_FMT = "!BHIHI"
    HEADER_LEN = struct.calcsize(HEADER_FMT)

    def __post_init__(self) -> None:
        self.opcode = KvOpcode(self.opcode)
        if self.opcode == KvOpcode.RESPONSE:
            raise HeaderError("KvRequest cannot carry the RESPONSE opcode")
        if not 0 <= self.tenant <= 0xFFFF:
            raise HeaderError(f"tenant id out of range: {self.tenant}")
        if not 0 <= self.request_id < 1 << 32:
            raise HeaderError(f"request id out of range: {self.request_id}")
        if len(self.key) > 0xFFFF:
            raise HeaderError(f"key too long: {len(self.key)} bytes")
        if self.opcode != KvOpcode.SET and self.value:
            raise HeaderError(f"{self.opcode.name} request cannot carry a value")

    def pack(self) -> bytes:
        head = struct.pack(
            self.HEADER_FMT,
            int(self.opcode),
            self.tenant,
            self.request_id,
            len(self.key),
            len(self.value),
        )
        return head + self.key + self.value

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["KvRequest", bytes]:
        if len(data) < cls.HEADER_LEN:
            raise HeaderError(f"truncated KV request: {len(data)} bytes")
        opcode, tenant, request_id, key_len, value_len = struct.unpack(
            cls.HEADER_FMT, data[: cls.HEADER_LEN]
        )
        end = cls.HEADER_LEN + key_len + value_len
        if len(data) < end:
            raise HeaderError("truncated KV request body")
        key = data[cls.HEADER_LEN : cls.HEADER_LEN + key_len]
        value = data[cls.HEADER_LEN + key_len : end]
        return cls(KvOpcode(opcode), tenant, request_id, key, value), data[end:]


@dataclass
class KvResponse:
    """A server (or on-NIC cache) response."""

    status: KvStatus
    tenant: int
    request_id: int
    value: bytes = b""

    HEADER_FMT = "!BBHII"
    HEADER_LEN = struct.calcsize(HEADER_FMT)

    def __post_init__(self) -> None:
        self.status = KvStatus(self.status)
        if not 0 <= self.tenant <= 0xFFFF:
            raise HeaderError(f"tenant id out of range: {self.tenant}")
        if not 0 <= self.request_id < 1 << 32:
            raise HeaderError(f"request id out of range: {self.request_id}")

    def pack(self) -> bytes:
        head = struct.pack(
            self.HEADER_FMT,
            int(KvOpcode.RESPONSE),
            int(self.status),
            self.tenant,
            self.request_id,
            len(self.value),
        )
        return head + self.value

    @classmethod
    def unpack(cls, data: bytes) -> Tuple["KvResponse", bytes]:
        if len(data) < cls.HEADER_LEN:
            raise HeaderError(f"truncated KV response: {len(data)} bytes")
        opcode, status, tenant, request_id, value_len = struct.unpack(
            cls.HEADER_FMT, data[: cls.HEADER_LEN]
        )
        if opcode != KvOpcode.RESPONSE:
            raise HeaderError(f"not a KV response (opcode {opcode})")
        end = cls.HEADER_LEN + value_len
        if len(data) < end:
            raise HeaderError("truncated KV response body")
        value = data[cls.HEADER_LEN : end]
        return cls(KvStatus(status), tenant, request_id, value), data[end:]


def peek_opcode(data: bytes) -> KvOpcode:
    """Cheap inspection of the opcode byte (used by RMT parse graphs)."""
    if not data:
        raise HeaderError("empty KV message")
    return KvOpcode(data[0])
