"""MAC and IPv4 address value types.

Implemented from scratch (no ``ipaddress`` import) so the wire encoding is
explicit and the types stay tiny, hashable and cheap to compare -- they are
used as match keys in RMT tables.
"""

from __future__ import annotations

import re
from typing import Union


class MacAddress:
    """A 48-bit Ethernet MAC address."""

    __slots__ = ("value",)

    _STR_RE = re.compile(r"^([0-9a-fA-F]{2}:){5}[0-9a-fA-F]{2}$")

    def __init__(self, value: Union[int, str, bytes, "MacAddress"]):
        if isinstance(value, MacAddress):
            self.value = value.value
        elif isinstance(value, int):
            if not 0 <= value < 1 << 48:
                raise ValueError(f"MAC address out of range: {value:#x}")
            self.value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 6:
                raise ValueError(f"MAC address needs 6 bytes, got {len(value)}")
            self.value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            if not self._STR_RE.match(value):
                raise ValueError(f"malformed MAC address string: {value!r}")
            self.value = int(value.replace(":", ""), 16)
        else:
            raise TypeError(f"cannot build MacAddress from {type(value).__name__}")

    @classmethod
    def from_wire(cls, raw: bytes) -> "MacAddress":
        """Length-checked wire bytes -> address, skipping re-validation.

        For parsers that have already sliced exactly 6 bytes; a 6-byte
        big-endian integer cannot be out of range.
        """
        self = object.__new__(cls)
        self.value = int.from_bytes(raw, "big")
        return self

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(6, "big")

    @property
    def is_broadcast(self) -> bool:
        return self.value == (1 << 48) - 1

    @property
    def is_multicast(self) -> bool:
        """True when the group bit (lowest bit of the first octet) is set."""
        return bool((self.value >> 40) & 1)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, MacAddress) and self.value == other.value

    def __hash__(self) -> int:
        return hash(("mac", self.value))

    def __str__(self) -> str:
        raw = f"{self.value:012x}"
        return ":".join(raw[i : i + 2] for i in range(0, 12, 2))

    def __repr__(self) -> str:
        return f"MacAddress('{self}')"


#: The all-ones broadcast MAC.
BROADCAST_MAC = MacAddress((1 << 48) - 1)


class IPv4Address:
    """A 32-bit IPv4 address."""

    __slots__ = ("value",)

    def __init__(self, value: Union[int, str, bytes, "IPv4Address"]):
        if isinstance(value, IPv4Address):
            self.value = value.value
        elif isinstance(value, int):
            if not 0 <= value < 1 << 32:
                raise ValueError(f"IPv4 address out of range: {value:#x}")
            self.value = value
        elif isinstance(value, (bytes, bytearray)):
            if len(value) != 4:
                raise ValueError(f"IPv4 address needs 4 bytes, got {len(value)}")
            self.value = int.from_bytes(value, "big")
        elif isinstance(value, str):
            parts = value.split(".")
            if len(parts) != 4:
                raise ValueError(f"malformed IPv4 address string: {value!r}")
            acc = 0
            for part in parts:
                if not part.isdigit():
                    raise ValueError(f"malformed IPv4 address string: {value!r}")
                octet = int(part)
                if octet > 255:
                    raise ValueError(f"IPv4 octet out of range in {value!r}")
                acc = (acc << 8) | octet
            self.value = acc
        else:
            raise TypeError(f"cannot build IPv4Address from {type(value).__name__}")

    @classmethod
    def from_wire(cls, raw: bytes) -> "IPv4Address":
        """Length-checked wire bytes -> address, skipping re-validation.

        For parsers that have already sliced exactly 4 bytes; a 4-byte
        big-endian integer cannot be out of range.
        """
        self = object.__new__(cls)
        self.value = int.from_bytes(raw, "big")
        return self

    def to_bytes(self) -> bytes:
        return self.value.to_bytes(4, "big")

    def in_subnet(self, network: "IPv4Address", prefix_len: int) -> bool:
        """True when this address falls inside ``network/prefix_len``."""
        if not 0 <= prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {prefix_len}")
        if prefix_len == 0:
            return True
        mask = ((1 << prefix_len) - 1) << (32 - prefix_len)
        return (self.value & mask) == (network.value & mask)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IPv4Address) and self.value == other.value

    def __lt__(self, other: "IPv4Address") -> bool:
        return self.value < other.value

    def __hash__(self) -> int:
        return hash(("ipv4", self.value))

    def __str__(self) -> str:
        return ".".join(str((self.value >> shift) & 0xFF) for shift in (24, 16, 8, 0))

    def __repr__(self) -> str:
        return f"IPv4Address('{self}')"
