"""The manycore NIC of Figure 2b.

Packets are load-balanced across embedded CPU cores; a core *orchestrates*
each packet's processing -- parsing it, calling hardware offload engines
one at a time, and finally issuing the DMA.  Section 2.3.2: "manycore
designs use a CPU to generate requests to hardware offloads as needed ...
processing a packet in one of the cores on a manycore NIC adds a latency
of 10 us or more" (citing the Azure SmartNIC paper).

Model: ``cores`` single-threaded servers.  Per packet a core pays
``orchestration_ps`` (the software overhead) plus a round trip to each
needed offload engine (each engine is a FIFO station shared by all
cores), then hands the packet to the DMA path.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.baselines.base_nic import BaseNic, OffloadStage, SimpleDma, next_required
from repro.core.host import Host
from repro.engines.base import Engine
from repro.packet.packet import Direction, Packet
from repro.sim.clock import US
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter, LatencyTracker

#: The paper's number for core orchestration overhead.
DEFAULT_ORCHESTRATION_PS = 10 * US


class _Core:
    """One embedded CPU core: a single-threaded run-to-completion server."""

    __slots__ = ("index", "busy", "queue")

    def __init__(self, index: int):
        self.index = index
        self.busy = False
        self.queue: Deque[Packet] = deque()


class ManycoreNic(BaseNic):
    """Figure 2b: embedded cores orchestrate packet processing."""

    def __init__(
        self,
        sim: Simulator,
        offload_engines: Sequence[Tuple[str, Engine]],
        name: str = "manycore_nic",
        cores: int = 8,
        orchestration_ps: int = DEFAULT_ORCHESTRATION_PS,
        per_offload_call_ps: int = 1 * US,
        line_rate_bps: float = 100e9,
        host: Optional[Host] = None,
    ):
        super().__init__(sim, name, line_rate_bps, host)
        if cores < 1:
            raise ValueError(f"{name}: need at least one core")
        self.orchestration_ps = orchestration_ps
        self.per_offload_call_ps = per_offload_call_ps
        self._cores = [_Core(i) for i in range(cores)]
        self._rr_next = 0
        self._rx_wire_free = 0
        self._tx_wire_free = 0
        self.dma = SimpleDma(sim, f"{name}.dma", self.host)
        self.stations: Dict[str, OffloadStage] = {}
        for index, (offload_name, engine) in enumerate(offload_engines):
            self.stations[offload_name] = OffloadStage(
                sim,
                f"{name}.hw{index}_{offload_name}",
                engine,
                offload_name,
                on_output=self._on_station_output,
            )
        self.core_latency = LatencyTracker(f"{name}.core_latency")
        self.orchestrations = Counter(f"{name}.orchestrations")

    # ------------------------------------------------------------------
    # RX
    # ------------------------------------------------------------------

    def inject(self, packet: Packet, port: int = 0) -> int:
        start = max(self.sim.now, self._rx_wire_free)
        arrival = start + self.wire_time_ps(packet)
        self._rx_wire_free = arrival
        self.sim.schedule_at(arrival, self._rx_arrival, packet)
        return arrival

    def _rx_arrival(self, packet: Packet) -> None:
        packet.meta.direction = Direction.RX
        packet.meta.nic_arrival_ps = self.sim.now
        self.rx_count.add()
        # The on-chip network cannot parse headers (section 2.3.2), so it
        # can only spray packets across cores round-robin.
        core = self._cores[self._rr_next]
        self._rr_next = (self._rr_next + 1) % len(self._cores)
        core.queue.append(packet)
        self._core_try_start(core)

    # ------------------------------------------------------------------
    # Core orchestration
    # ------------------------------------------------------------------

    def _core_try_start(self, core: _Core) -> None:
        if core.busy or not core.queue:
            return
        packet = core.queue.popleft()
        core.busy = True
        packet.meta.annotations["core"] = core.index
        packet.meta.annotations["core_start_ps"] = self.sim.now
        self.orchestrations.add()
        # The orchestration overhead: software parse + decide.
        self.sim.schedule(self.orchestration_ps, self._dispatch_next, core, packet)

    def _dispatch_next(self, core: _Core, packet: Packet) -> None:
        """Send the packet to its next needed offload, or finish it."""
        pending = next_required(packet)
        if pending is not None and pending in self.stations:
            packet.meta.annotations["await_core"] = core.index
            # The core-to-engine request costs a software call each way.
            self.sim.schedule(
                self.per_offload_call_ps,
                self.stations[pending].accept,
                packet,
            )
            return
        self._core_finish(core, packet)

    def _on_station_output(self, packet: Packet) -> None:
        """Hardware engine done: the owning core resumes orchestration."""
        core_index = packet.meta.annotations.get("await_core")
        if core_index is None:
            raise RuntimeError(f"{self.name}: engine output lost its core")
        core = self._cores[core_index]
        self.sim.schedule(self.per_offload_call_ps, self._dispatch_next, core, packet)

    def _core_finish(self, core: _Core, packet: Packet) -> None:
        started = packet.meta.annotations.pop("core_start_ps", self.sim.now)
        self.core_latency.observe(started, self.sim.now)
        core.busy = False
        if packet.meta.direction == Direction.TX:
            self._transmit(packet)
        else:
            self.dma.accept(packet)
        self._core_try_start(core)

    # ------------------------------------------------------------------
    # TX
    # ------------------------------------------------------------------

    def send_from_host(self, frame: bytes, needs: Tuple[str, ...] = ()) -> Packet:
        packet = Packet(frame)
        packet.meta.direction = Direction.TX
        packet.meta.nic_arrival_ps = self.sim.now
        packet.meta.annotations["needs"] = needs
        core = self._cores[self._rr_next]
        self._rr_next = (self._rr_next + 1) % len(self._cores)
        core.queue.append(packet)
        self._core_try_start(core)
        return packet

    def _transmit(self, packet: Packet) -> None:
        start = max(self.sim.now, self._tx_wire_free)
        done = start + self.wire_time_ps(packet)
        self._tx_wire_free = done
        self.sim.schedule_at(done, self._record_tx, packet)

    @property
    def busy_cores(self) -> int:
        return sum(1 for core in self._cores if core.busy)
