"""Baseline programmable-NIC architectures (Figure 2).

The paper's argument is comparative: PANIC vs the three existing design
families.  Each baseline is a full simulator sharing the same packet
stack, offload implementations, host model and cost models as PANIC, so
differences in results come from *architecture* alone:

* :class:`PipelineNic` -- offloads in a fixed line on the wire
  (Figure 2a); exhibits head-of-line blocking and recirculation cost.
* :class:`ManycoreNic` -- embedded cores orchestrate every packet
  (Figure 2b); adds ~10 us of orchestration latency (section 2.3.2).
* :class:`RmtNic` -- a FlexNIC-style match+action pipeline (Figure 2c);
  line-rate steering but cannot host payload offloads (section 2.3.3).
"""

from repro.baselines.base_nic import BaseNic, OffloadStage
from repro.baselines.pipeline_nic import PipelineNic
from repro.baselines.manycore_nic import ManycoreNic
from repro.baselines.rmt_nic import RmtNic, UnsupportedOffloadError

__all__ = [
    "BaseNic",
    "ManycoreNic",
    "OffloadStage",
    "PipelineNic",
    "RmtNic",
    "UnsupportedOffloadError",
]
