"""The RMT-only NIC of Figure 2c (FlexNIC-style).

Incoming packets flow through a programmable match+action pipeline that
parses them, steers flows to receive queues, and can rewrite headers --
all at line rate -- before a DMA stage writes them to the host.  Egress
symmetrically passes a TX pipeline.

The characteristic *limitation* (section 2.3.3) is enforced, not merely
documented: every stage must finish in bounded per-stage work, so
attempting to attach a payload offload (IPSec, compression, anything
needing buffering or DMA waits) raises :class:`UnsupportedOffloadError`.
What the RMT NIC *can* do -- steering, counting, header rewrites -- it
does at full line rate, which the throughput benches confirm.
"""

from __future__ import annotations

from typing import Optional, Tuple

from repro.baselines.base_nic import BaseNic, SimpleDma
from repro.core.host import Host
from repro.packet.packet import Direction, Packet
from repro.rmt.phv import Phv
from repro.rmt.pipeline import RmtPipeline, RmtProgram
from repro.sim.clock import MHZ, Clock
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter

#: Offload families that fundamentally cannot run inside an RMT stage.
UNSUPPORTED_OFFLOADS = frozenset(
    {"ipsec", "compression", "kvcache", "rdma", "regex", "dma_wait"}
)


class UnsupportedOffloadError(NotImplementedError):
    """Raised when asking the RMT-only NIC to host a payload offload."""


class RmtNic(BaseNic):
    """Figure 2c: parser + M+A pipeline + DMA, nothing else."""

    def __init__(
        self,
        sim: Simulator,
        program: RmtProgram,
        name: str = "rmt_nic",
        pipelines: int = 1,
        freq_hz: float = 500 * MHZ,
        line_rate_bps: float = 100e9,
        host: Optional[Host] = None,
        rx_queues: int = 4,
    ):
        super().__init__(sim, name, line_rate_bps, host)
        self.pipeline = RmtPipeline(program)
        self.pipelines = pipelines
        self.clock = Clock(freq_hz)
        self.rx_queues = rx_queues
        self._next_accept = 0
        self._rx_wire_free = 0
        self._tx_wire_free = 0
        self.dma = SimpleDma(sim, f"{name}.dma", self.host)
        self.steered = Counter(f"{name}.steered")
        self.dropped = Counter(f"{name}.dropped")

    # ------------------------------------------------------------------
    # Capability surface
    # ------------------------------------------------------------------

    def attach_offload(self, offload_name: str) -> None:
        """Refuse payload offloads, per section 2.3.3."""
        if offload_name.lower() in UNSUPPORTED_OFFLOADS:
            raise UnsupportedOffloadError(
                f"{self.name}: {offload_name!r} needs payload processing or "
                "DMA waits; RMT pipeline stages must complete in a single "
                "cycle (section 2.3.3)"
            )
        # Header-level functions are what the program already expresses.

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    @property
    def initiation_interval_ps(self) -> int:
        return max(1, self.clock.period_ps // self.pipelines)

    @property
    def latency_ps(self) -> int:
        return self.clock.cycles_to_ps(self.pipeline.program.num_stages + 2)

    @property
    def throughput_pps(self) -> float:
        """F * P, as in section 4.2."""
        return self.clock.freq_hz * self.pipelines

    # ------------------------------------------------------------------
    # RX
    # ------------------------------------------------------------------

    def inject(self, packet: Packet, port: int = 0) -> int:
        start = max(self.sim.now, self._rx_wire_free)
        arrival = start + self.wire_time_ps(packet)
        self._rx_wire_free = arrival
        self.sim.schedule_at(arrival, self._rx_arrival, packet)
        return arrival

    def _rx_arrival(self, packet: Packet) -> None:
        packet.meta.direction = Direction.RX
        packet.meta.nic_arrival_ps = self.sim.now
        self.rx_count.add()
        start = max(self.sim.now, self._next_accept)
        self._next_accept = start + self.initiation_interval_ps
        self.sim.schedule_at(start + self.latency_ps, self._pipeline_done, packet)

    def _pipeline_done(self, packet: Packet) -> None:
        phv = self.pipeline.process(
            packet.data,
            metadata={"direction": b"rx", "ingress_port": 0},
            now_ps=self.sim.now,
        )
        if phv.get_or("meta.drop", 0):
            self.dropped.add()
            return
        queue = int(phv.get_or("meta.rx_queue", 0))
        packet.meta.annotations["rx_queue"] = queue
        if phv.is_valid("kv.tenant"):
            packet.meta.tenant = int(phv.get("kv.tenant"))
        rewritten = RmtPipeline.deparse(phv, packet.data)
        if rewritten != packet.data:
            packet = Packet(rewritten, packet.kind, packet.meta)
        self.steered.add()
        self.dma.accept(packet)

    # ------------------------------------------------------------------
    # TX
    # ------------------------------------------------------------------

    def send_from_host(self, frame: bytes, needs: Tuple[str, ...] = ()) -> Packet:
        for offload_name in needs:
            self.attach_offload(offload_name)  # raises if unsupported
        packet = Packet(frame)
        packet.meta.direction = Direction.TX
        packet.meta.nic_arrival_ps = self.sim.now
        start = max(self.sim.now, self._next_accept)
        self._next_accept = start + self.initiation_interval_ps
        self.sim.schedule_at(start + self.latency_ps, self._transmit, packet)
        return packet

    def _transmit(self, packet: Packet) -> None:
        start = max(self.sim.now, self._tx_wire_free)
        done = start + self.wire_time_ps(packet)
        self._tx_wire_free = done
        self.sim.schedule_at(done, self._record_tx, packet)
