"""The pipelined ("bump in the wire") NIC of Figure 2a.

Offloads sit in a fixed line between the wire and the DMA path; every
packet flows through every stage in order.  Section 2.3.1's two
limitations emerge directly from this structure:

1. packets traverse offloads they do not need (latency + bandwidth
   waste), and a slow offload head-of-line blocks unrelated packets
   (a ``bypass_enabled`` knob models the optional bypass logic the paper
   concedes can mitigate -- but not remove -- this);
2. chaining is static: a packet needing offloads in a different order
   than the physical line must *recirculate* through the whole pipeline,
   costing a full extra traversal of on-NIC bandwidth.

RX: wire -> stage_1 -> ... -> stage_N -> DMA -> host.
TX: host -> stages (reverse order) -> wire.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.baselines.base_nic import BaseNic, OffloadStage, SimpleDma, packet_needs
from repro.core.host import Host
from repro.engines.base import Engine
from repro.packet.packet import Direction, Packet
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter

#: Safety valve: a packet recirculating more than this is misconfigured.
MAX_RECIRCULATIONS = 8


class PipelineNic(BaseNic):
    """Figure 2a: a static chain of offloads on the wire."""

    def __init__(
        self,
        sim: Simulator,
        offload_line: Sequence[Tuple[str, Engine]],
        name: str = "pipeline_nic",
        line_rate_bps: float = 100e9,
        host: Optional[Host] = None,
        bypass_enabled: bool = False,
        allow_recirculation: bool = True,
    ):
        super().__init__(sim, name, line_rate_bps, host)
        self.bypass_enabled = bypass_enabled
        self.allow_recirculation = allow_recirculation
        self.stage_names = [offload_name for offload_name, _ in offload_line]
        self.stages: List[OffloadStage] = []
        self.recirculations = Counter(f"{name}.recirculations")
        self._rx_wire_free = 0
        self._tx_wire_free = 0
        self.dma = SimpleDma(sim, f"{name}.dma", self.host)
        for index, (offload_name, engine) in enumerate(offload_line):
            stage = OffloadStage(
                sim,
                f"{name}.stage{index}_{offload_name}",
                engine,
                offload_name,
                on_output=self._make_forwarder(index),
            )
            self.stages.append(stage)

    # ------------------------------------------------------------------
    # RX path
    # ------------------------------------------------------------------

    def inject(self, packet: Packet, port: int = 0) -> int:
        start = max(self.sim.now, self._rx_wire_free)
        arrival = start + self.wire_time_ps(packet)
        self._rx_wire_free = arrival
        self.sim.schedule_at(arrival, self._rx_arrival, packet)
        return arrival

    def _rx_arrival(self, packet: Packet) -> None:
        packet.meta.direction = Direction.RX
        packet.meta.nic_arrival_ps = self.sim.now
        packet.meta.annotations.setdefault("recirculations", 0)
        self.rx_count.add()
        self._enter_stage(packet, 0)

    def _enter_stage(self, packet: Packet, index: int) -> None:
        if index >= len(self.stages):
            self._after_pipeline(packet)
            return
        stage = self.stages[index]
        if self.bypass_enabled and not packet_needs(packet, stage.offload_name):
            # Bypass logic skips the queue but still burns a hop of wire.
            self.sim.schedule(
                stage.engine.clock.cycles_to_ps(1),
                self._enter_stage,
                packet,
                index + 1,
            )
            return
        packet.meta.annotations["pipeline_next"] = index + 1
        stage.accept(packet)

    def _make_forwarder(self, index: int):
        def forward(packet: Packet) -> None:
            self._enter_stage(packet, index + 1)

        return forward

    def _after_pipeline(self, packet: Packet) -> None:
        pending = self._unserved_offloads(packet)
        if pending and self.allow_recirculation:
            count = packet.meta.annotations.get("recirculations", 0) + 1
            if count > MAX_RECIRCULATIONS:
                raise RuntimeError(
                    f"{self.name}: packet recirculated {count} times; "
                    f"unserved offloads {pending}"
                )
            packet.meta.annotations["recirculations"] = count
            self.recirculations.add()
            # Recirculation re-enters at stage 0 and consumes a slot on
            # the (shared) internal wire, like the paper describes.
            self._enter_stage(packet, 0)
            return
        if packet.meta.direction == Direction.TX or packet.meta.annotations.get(
            "from_host"
        ):
            self._transmit(packet)
        else:
            self.dma.accept(packet)

    def _unserved_offloads(self, packet: Packet) -> List[str]:
        """Offloads the packet needs, in order, that no stage applied yet."""
        needed = packet.meta.annotations.get("needs", ())
        served = packet.meta.annotations.get("served", ())
        return [
            offload_name
            for offload_name in needed
            if offload_name in self.stage_names and offload_name not in served
        ]

    # ------------------------------------------------------------------
    # TX path
    # ------------------------------------------------------------------

    def send_from_host(self, frame: bytes, needs: Tuple[str, ...] = ()) -> Packet:
        """Host hands the NIC a frame to transmit (through the line)."""
        packet = Packet(frame)
        packet.meta.direction = Direction.TX
        packet.meta.nic_arrival_ps = self.sim.now
        packet.meta.annotations["needs"] = needs
        packet.meta.annotations["from_host"] = True
        packet.meta.annotations.setdefault("recirculations", 0)
        self._enter_stage(packet, 0)
        return packet

    def _transmit(self, packet: Packet) -> None:
        start = max(self.sim.now, self._tx_wire_free)
        done = start + self.wire_time_ps(packet)
        self._tx_wire_free = done
        self.sim.schedule_at(done, self._record_tx, packet)

    @property
    def total_backlog(self) -> int:
        return sum(stage.backlog for stage in self.stages)
