"""Shared machinery for the baseline NIC simulators.

Baselines reuse the *functional* engines (their ``handle`` transforms and
``service_time_ps`` cost models) but arrange them in their own topologies
instead of PANIC's mesh.  :class:`OffloadStage` adapts an engine into a
FIFO-served stage; :class:`BaseNic` provides the common external
interface (inject / transmitted / host) so experiments can swap NICs.

Which offloads a packet *needs* is carried in
``packet.meta.annotations["needs"]`` (a tuple of offload names) -- the
moral equivalent of the flow tables PANIC programs; baselines without a
parser rich enough to decide this are noted per class.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.host import Host
from repro.engines.base import Engine
from repro.packet.packet import Direction, MessageKind, Packet
from repro.sim.clock import MHZ, SEC
from repro.sim.kernel import Component, Simulator
from repro.sim.stats import Counter, LatencyTracker


def packet_needs(packet: Packet, offload_name: str) -> bool:
    """Does this packet's flow require the named offload?"""
    return offload_name in packet.meta.annotations.get("needs", ())


def next_required(packet: Packet) -> Optional[str]:
    """The next offload in the packet's *ordered* requirement, if any.

    Packets whose offloads must run in a specific order carry
    ``annotations["needs"]`` as an ordered tuple; ``annotations["served"]``
    records what already ran.  Returns ``None`` when nothing is pending.
    """
    needs = packet.meta.annotations.get("needs", ())
    served = packet.meta.annotations.get("served", ())
    for name in needs:
        if name not in served:
            return name
    return None


def mark_served(packet: Packet, offload_name: str) -> None:
    served = tuple(packet.meta.annotations.get("served", ()))
    packet.meta.annotations["served"] = served + (offload_name,)


class OffloadStage(Component):
    """A FIFO-served stage wrapping a functional engine.

    Packets are serviced one at a time in arrival order; a slow packet
    therefore blocks everything behind it -- the head-of-line behaviour
    the pipeline baseline inherits by construction.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        engine: Engine,
        offload_name: str,
        on_output: Callable[[Packet], None],
        passthrough_cycles: int = 1,
    ):
        super().__init__(sim, name)
        self.engine = engine
        self.offload_name = offload_name
        self.on_output = on_output
        self.passthrough_cycles = passthrough_cycles
        self._fifo: Deque[Packet] = deque()
        self._busy = False
        self.serviced = Counter(f"{name}.serviced")
        self.passed_through = Counter(f"{name}.passthrough")
        self.wait_latency = LatencyTracker(f"{name}.wait")

    def accept(self, packet: Packet) -> None:
        packet.meta.annotations["stage_enq_ps"] = self.now
        self._fifo.append(packet)
        self._try_start()

    @property
    def backlog(self) -> int:
        return len(self._fifo)

    def _try_start(self) -> None:
        if self._busy or not self._fifo:
            return
        packet = self._fifo.popleft()
        self._busy = True
        enq = packet.meta.annotations.pop("stage_enq_ps", self.now)
        self.wait_latency.observe(enq, self.now)
        # Ordered chains: only apply when this offload is the *next*
        # unserved requirement; an out-of-order stage passes the packet
        # through (it will have to recirculate, section 2.3.1).
        apply_engine = next_required(packet) == self.offload_name
        if apply_engine:
            delay = self.engine.service_time_ps(packet)
        else:
            delay = self.engine.clock.cycles_to_ps(self.passthrough_cycles)
        self.schedule(delay, self._finish, packet, apply_engine)

    def _finish(self, packet: Packet, apply_engine: bool) -> None:
        self._busy = False
        if apply_engine:
            self.serviced.add()
            packet.touch(self.name)
            outputs = self.engine.handle(packet)
            for out_packet, _dest in outputs:
                mark_served(out_packet, self.offload_name)
                self.on_output(out_packet)
            if not outputs:
                # The offload swallowed the packet (e.g. a DPI drop).
                pass
        else:
            self.passed_through.add()
            self.on_output(packet)
        self._try_start()


class SimpleDma(Component):
    """A single-server DMA/PCIe path shared by the baselines."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        host: Host,
        pcie_bps: float = 120e9,
        descriptor_ps: int = 32_000,
    ):
        super().__init__(sim, name)
        self.host = host
        self.pcie_bps = pcie_bps
        self.descriptor_ps = descriptor_ps
        self._fifo: Deque[Packet] = deque()
        self._busy = False
        self.writes = Counter(f"{name}.writes")

    def accept(self, packet: Packet) -> None:
        self._fifo.append(packet)
        self._try_start()

    def _try_start(self) -> None:
        if self._busy or not self._fifo:
            return
        packet = self._fifo.popleft()
        self._busy = True
        wire = int(packet.frame_bytes * 8 * SEC / self.pcie_bps)
        delay = self.descriptor_ps + wire + self.host.memory_latency_ps()
        self.schedule(delay, self._finish, packet)

    def _finish(self, packet: Packet) -> None:
        self._busy = False
        queue = int(packet.meta.annotations.get("rx_queue", 0))
        self.host.write_rx(packet, queue)
        self.writes.add()
        self.host.interrupt(1)
        self._try_start()


class BaseNic:
    """Common NIC surface: ports in, host behind, transmitted out."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        line_rate_bps: float = 100e9,
        host: Optional[Host] = None,
    ):
        self.sim = sim
        self.name = name
        self.line_rate_bps = line_rate_bps
        self.host = host if host is not None else Host(sim, f"{name}.host")
        self.transmitted: List[Packet] = []
        self._tx_callbacks: List[Callable[[Packet], None]] = []
        self.rx_count = Counter(f"{name}.rx")
        self.nic_latency = LatencyTracker(f"{name}.latency")

    def wire_time_ps(self, packet: Packet) -> int:
        return int(packet.wire_bits * SEC / self.line_rate_bps)

    def inject(self, packet: Packet, port: int = 0) -> int:
        raise NotImplementedError

    def on_transmit(self, callback: Callable[[Packet], None]) -> None:
        self._tx_callbacks.append(callback)

    def _record_tx(self, packet: Packet) -> None:
        packet.meta.nic_departure_ps = self.sim.now
        if packet.meta.nic_arrival_ps is not None:
            self.nic_latency.observe(packet.meta.nic_arrival_ps, self.sim.now)
        self.transmitted.append(packet)
        for callback in self._tx_callbacks:
            callback(packet)
