"""The paper's primary contribution: the PANIC NIC architecture.

* :class:`PanicNic` -- engines + logical switch + logical scheduler,
  assembled on a 2D mesh exactly as in Figures 1 and 3c.
* :class:`PanicConfig` -- every design knob (ports, line rate, mesh
  geometry, RMT parallelism, offload set...).
* :class:`PanicControl` -- the intent-level control plane programming
  the reference RMT program's tables.
* :class:`Host` / :class:`HostKvServer` -- the host-side substrate.
"""

from repro.core.config import KNOWN_OFFLOADS, PanicConfig
from repro.core.host import Host, HostKvServer
from repro.core.panic import PanicNic
from repro.core.pipeline_programs import (
    PanicControl,
    build_panic_program,
    panic_decision_factory,
)

__all__ = [
    "Host",
    "HostKvServer",
    "KNOWN_OFFLOADS",
    "PanicConfig",
    "PanicControl",
    "PanicNic",
    "build_panic_program",
    "panic_decision_factory",
]
