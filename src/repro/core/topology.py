"""Multi-NIC rack topologies and their partitioning into shards.

A :class:`RackTopology` is a declarative description of a rack-scale
experiment: which NICs exist (each built by a picklable builder
function), and which external wires cable them together.  The same
description drives both execution modes in :mod:`repro.sim.shard`:

* **monolithic** -- every NIC in one :class:`~repro.sim.kernel.Simulator`
  with real :class:`~repro.workloads.wire.Wire` components (the reference
  semantics);
* **sharded** -- NICs partitioned across worker processes, cross-shard
  wires replaced by :class:`~repro.workloads.wire.ShardBoundary` halves
  synchronized with conservative time windows.

Builders must be module-level functions (picklable by reference) with
signature ``builder(sim, name, **params) -> (nic, report)`` where
``report()`` returns a picklable dict of per-NIC results.  Keeping the
builder inside the topology guarantees the monolithic and sharded runs
construct bit-identical NICs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.sim.clock import NS

#: Minimum lookahead a rack-local cross-shard wire may offer: anything
#: shorter than rack-scale propagation (a few meters of fibre + PHY)
#: would force synchronization windows comparable to single events,
#: erasing the point of sharding.
MIN_LOOKAHEAD_PS = 500 * NS


class TopologyError(ValueError):
    """Raised for malformed topologies or shard assignments."""


#: ``builder(sim, name, **params) -> (nic, report)``.
NicBuilder = Callable[..., Tuple[Any, Callable[[], dict]]]


@dataclass(frozen=True)
class NicSpec:
    """One NIC in the rack: a name plus the recipe to build it."""

    name: str
    builder: NicBuilder
    params: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class LinkSpec:
    """A full-duplex cable between two NICs' Ethernet ports."""

    nic_a: str
    nic_b: str
    port_a: int = 0
    port_b: int = 0
    propagation_ps: int = MIN_LOOKAHEAD_PS

    def __post_init__(self) -> None:
        if self.nic_a == self.nic_b:
            raise TopologyError(f"link connects {self.nic_a!r} to itself")
        if self.propagation_ps <= 0:
            raise TopologyError(
                f"link {self.nic_a}<->{self.nic_b}: propagation must be "
                f"positive, got {self.propagation_ps}"
            )


class RackTopology:
    """A named set of NICs plus the wires cabling them together."""

    def __init__(self, nics: Sequence[NicSpec], links: Sequence[LinkSpec]):
        self.nics: List[NicSpec] = list(nics)
        self.links: List[LinkSpec] = list(links)
        if not self.nics:
            raise TopologyError("topology needs at least one NIC")
        names = [spec.name for spec in self.nics]
        if len(set(names)) != len(names):
            raise TopologyError(f"duplicate NIC names in {names}")
        known = set(names)
        seen_ports = set()
        for link in self.links:
            for nic, port in ((link.nic_a, link.port_a),
                              (link.nic_b, link.port_b)):
                if nic not in known:
                    raise TopologyError(f"link references unknown NIC {nic!r}")
                if (nic, port) in seen_ports:
                    raise TopologyError(
                        f"port {port} of {nic!r} is cabled twice"
                    )
                seen_ports.add((nic, port))

    # ------------------------------------------------------------------
    # Shard assignment
    # ------------------------------------------------------------------

    @staticmethod
    def _event_weight(spec: NicSpec) -> int:
        """Estimated relative event rate of one NIC.

        The dominant event cost of a NIC is frames injected times hops
        per frame, so the hint is ``frames * (1 + chain length)`` read
        from the builder params (``frames`` plus a ``chain`` or
        ``offloads`` sequence when present).  NICs without hints weigh
        the same as each other, so unhinted topologies keep the old
        equal-size split.
        """
        params = spec.params
        frames = params.get("frames", 1)
        if not isinstance(frames, int) or frames < 1:
            frames = 1
        chain = params.get("chain")
        if chain is None:
            chain = params.get("offloads")
        hops = len(chain) if isinstance(chain, (list, tuple)) else 0
        return frames * (1 + hops)

    def assign_shards(self, workers: int) -> Dict[str, int]:
        """Partition NICs into ``workers`` shards, balancing event rate.

        Contiguous blocks in declaration order -- declaration order is
        the user's locality hint (put chatty NICs next to each other to
        keep their wire intra-shard).  Block boundaries are chosen to
        minimize the heaviest shard's estimated event rate (see
        :meth:`_event_weight`), so one busy NIC is not binned with three
        idle ones just to equalize counts.  Fully deterministic: the
        minimal feasible per-shard capacity is found by bisection, then
        shards fill greedily front-to-back (ties break toward larger
        early shards, matching the historical equal-size split when all
        weights agree).
        """
        if workers < 1:
            raise TopologyError(f"need at least one worker, got {workers}")
        if workers > len(self.nics):
            raise TopologyError(
                f"{workers} workers for only {len(self.nics)} NICs"
            )
        count = len(self.nics)
        weights = [self._event_weight(spec) for spec in self.nics]

        def blocks_needed(cap: int) -> int:
            blocks, load = 1, 0
            for weight in weights:
                if load and load + weight > cap:
                    blocks += 1
                    load = weight
                else:
                    load += weight
            return blocks

        low, high = max(weights), sum(weights)
        while low < high:
            mid = (low + high) // 2
            if blocks_needed(mid) <= workers:
                high = mid
            else:
                low = mid + 1
        cap = low

        assignment: Dict[str, int] = {}
        index = 0
        for shard in range(workers):
            reserve = workers - shard - 1  # later shards stay non-empty
            load = 0
            taken = 0
            while index < count - reserve:
                weight = weights[index]
                if reserve and taken and load + weight > cap:
                    # The final shard takes every leftover NIC; earlier
                    # shards close at capacity.
                    break
                load += weight
                assignment[self.nics[index].name] = shard
                index += 1
                taken += 1
        return assignment

    def cross_links(self, assignment: Dict[str, int]) -> List[LinkSpec]:
        """The links whose endpoints live in different shards."""
        return [
            link for link in self.links
            if assignment[link.nic_a] != assignment[link.nic_b]
        ]

    def lookahead_ps(self, assignment: Dict[str, int]) -> int:
        """Conservative lookahead: the minimum cross-shard propagation.

        No event can cross a shard boundary faster than the slowest-case
        (i.e. minimum-delay) wire, so every shard may run ``lookahead``
        beyond the globally earliest pending event without missing an
        incoming message.  Raises when a cross-shard wire is shorter than
        :data:`MIN_LOOKAHEAD_PS` -- assign those NICs to the same shard
        instead.
        """
        missing = set(assignment) ^ {spec.name for spec in self.nics}
        if missing:
            raise TopologyError(f"assignment does not cover NICs: {missing}")
        cross = self.cross_links(assignment)
        if not cross:
            # Single shard (or disconnected shards): windows are unbounded.
            return 0
        lookahead = min(link.propagation_ps for link in cross)
        if lookahead < MIN_LOOKAHEAD_PS:
            offenders = [
                f"{l.nic_a}<->{l.nic_b} ({l.propagation_ps} ps)"
                for l in cross if l.propagation_ps < MIN_LOOKAHEAD_PS
            ]
            raise TopologyError(
                "cross-shard wires shorter than the minimum lookahead "
                f"({MIN_LOOKAHEAD_PS} ps): {', '.join(offenders)}; "
                "co-locate those NICs in one shard"
            )
        return lookahead

    def __repr__(self) -> str:
        return (
            f"RackTopology({len(self.nics)} NICs, {len(self.links)} links)"
        )
