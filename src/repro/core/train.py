"""Frame trains: batched engine execution over quiescent windows.

The scalar simulator charges every frame roughly 27 kernel events end to
end: wire arrival, a loopback enqueue, per-engine pop/finish pairs, a NoC
event per hop, DMA, PCIe, interrupts.  Almost all of that Python work is
pure dispatch overhead whenever the NIC is *quiescent* -- no other event
is pending before the frame's next state change, so every intermediate
timestamp follows arithmetically, exactly like
:class:`~repro.noc.express.ExpressFlight` collapses an idle NoC route
into one delivery event.

:class:`TrainLane` generalizes that idea from wires to whole engines.  It
provides the two train shapes behind ``PanicConfig.batch_execution``:

**Trajectory trains** (:meth:`try_ride`) fire at RX arrival: one kernel
event carries a single frame across its *entire* trajectory -- MAC
service, the express hop to the RMT pipeline, classification, every
chain engine, DMA, and PCIe -- committing the same state mutations the
scalar path would, at the same simulated timestamps, by shifting the
kernel clock forward inside the event before each genuine
``handle``/``decide``/``service_time_ps`` call.

**Frame trains** (:meth:`try_batch`) fire when an idle engine's PIFO
holds several eligible frames (e.g. the drain after a stall fault
recovers): one event pops the whole batch
(:meth:`~repro.sched.pifo.PifoQueue.pop_batch`), computes the per-frame
service windows arithmetically, and vectorizes the per-frame payload
work through the engine's ``service_many`` hook
(:mod:`repro.packet.vectorized`).

Equivalence contract
--------------------

Trains are *invisible* in simulated terms: stats trees, timestamps,
delivery order, and RNG draws are bit-identical with batching on or off.
Three mechanisms enforce it:

* **Quiescence.**  A train only forms when
  :meth:`~repro.sim.kernel.Simulator.train_horizon` yields a horizon: no
  same-timestamp FIFO event pending, no after-event hooks (telemetry
  probes observe every intermediate step, so their presence disables
  trains entirely), and every mutation timestamp strictly below the next
  heap event and the current ``run()`` deadline.  The deadline bound is
  what keeps trains inside a ShardBoundary sync window -- sharded and
  monolithic runs stay bit-identical at any worker count.
* **Flush-on-anything.**  Per-hop eligibility checks mirror the express
  path's idle scan: armed faults, slowdowns, crashed engines, buffered
  routers, reserved channels, exhausted credits, pointer-mode payloads,
  CONTROL heartbeats, and sampled (``__trace__``) packets all refuse the
  train, falling back to the scalar machinery *before any mutation*.
  Mid-trajectory, the frame instead hands off: the lane reconstructs the
  exact scalar in-service state (busy lane + pending ``_finish`` event)
  and lets real events carry on.  A fault armed for time T is a heap
  event, so the horizon already guarantees no train commits state at or
  beyond T.
* **Exact replay.**  Counters, latency trackers, round-robin rotations,
  PIFO sequence numbers, message ids, and RNG draws are advanced in the
  same order and by the same amounts as the scalar path.  The hot hop
  and service recipes inline their scalar counterparts
  (``PifoQueue.transit``, ``LatencyTracker.observe``,
  ``NocChannel._account_express_hop``,
  ``NocRouter._account_express_forward``, ``RateMeter.record``) --
  each inlined block cites the method it replays; keep them in sync.

The lane's own counters live outside ``PanicNic.stats()`` -- they count
simulator mechanics, not NIC behaviour, and stats trees must not differ
between modes.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engines.base import Engine
from repro.engines.checksum_engine import ChecksumEngine, _rx_verdict
from repro.engines.ethernet import EthernetPort
from repro.engines.rmt_engine import RmtPipelineEngine
from repro.noc.message import NocMessage, _message_ids
from repro.noc.router import Router
from repro.packet.packet import Direction, MessageKind, Packet

__all__ = ["TrainLane"]

#: Cache-miss sentinel (None is a valid cached kind).
_MISS = object()

#: Heartbeat probes/echoes take dedicated scalar branches in every
#: engine, so control messages always refuse the train.
_CONTROL = MessageKind.CONTROL

#: Stock methods the ride may shortcut (identity-checked per leg).
_CHECKSUM_HANDLE = ChecksumEngine.handle
_CHECKSUM_SVC = ChecksumEngine.service_time_ps
_TX = Direction.TX
_RX = Direction.RX
_STOCK_RX_ARRIVAL = EthernetPort._rx_arrival


class TrainLane:
    """Per-NIC batched-execution driver (see module docstring)."""

    def __init__(self, nic) -> None:
        self.nic = nic
        self.sim = nic.sim
        self.mesh = nic.mesh
        # Working horizon of the ride in progress (picoseconds; every
        # committed mutation timestamp must stay strictly below it).
        self._h: float = float("-inf")
        # engine -> "base" | "rmt" | None (method-identity whitelist;
        # subclasses that override the service loop ride scalar).
        self._kinds: Dict[int, Optional[str]] = {}
        self._kind_obj: Dict[int, Engine] = {}
        self._routers: Dict[int, object] = {}
        # Stock ChecksumEngine.service_time_ps results, keyed by every
        # input it reads (engine identity, frame length, cost knobs) so
        # mid-run knob mutation can never serve a stale delay.
        self._svc: Dict[tuple, int] = {}
        # engine -> leg recipe tuple (see _recipe_of).
        self._recipes: Dict[int, tuple] = {}
        # Diagnostics (not part of nic.stats(): trees must be identical
        # with batching on or off).
        self.trajectories = 0
        self.trajectory_hops = 0
        self.handoffs = 0
        self.refusals = 0
        self.batches = 0
        self.batched_frames = 0

    def stats(self) -> Dict[str, int]:
        """Lane diagnostics (separate from the NIC's stats tree)."""
        return {
            "trajectories": self.trajectories,
            "trajectory_hops": self.trajectory_hops,
            "handoffs": self.handoffs,
            "refusals": self.refusals,
            "batches": self.batches,
            "batched_frames": self.batched_frames,
        }

    # ------------------------------------------------------------------
    # Engine classification
    # ------------------------------------------------------------------

    def _kind_of(self, engine: Engine) -> Optional[str]:
        """``"base"``/``"rmt"`` when the engine's service loop is the
        stock one the lane knows how to replay, else None.

        Identity checks on the unbound methods: an engine subclass that
        overrides any part of the receive/service/route machinery gets
        scalar execution -- ``handle``/``service_time_ps``/``decide``
        overrides are fine (the lane calls them genuinely)."""
        key = id(engine)
        cached = self._kinds.get(key, _MISS)
        if cached is not _MISS:
            return cached
        cls = type(engine)
        kind: Optional[str] = None
        if isinstance(engine, RmtPipelineEngine):
            if (cls._try_start is RmtPipelineEngine._try_start
                    and cls._finish_rmt is RmtPipelineEngine._finish_rmt
                    and cls.receive is Engine.receive
                    and cls.try_receive is Engine.try_receive
                    and cls._rank_of is Engine._rank_of
                    and cls._route_by_chain is Engine._route_by_chain):
                kind = "rmt"
        elif (cls._try_start is Engine._try_start
                and cls._finish is Engine._finish
                and cls.receive is Engine.receive
                and cls.try_receive is Engine.try_receive
                and cls._rank_of is Engine._rank_of
                and cls._route_by_chain is Engine._route_by_chain
                and cls._loopback is Engine._loopback):
            kind = "base"
        self._kinds[key] = kind
        self._kind_obj[key] = engine  # keep ids stable while cached
        return kind

    def _router_of(self, engine: Engine):
        """The engine's local tile router (its inject channel's sink),
        or False when the engine's space wiring is not the stock
        ``notify_space = router.pump`` (the ride inlines that pump as a
        single fairness rotation, so anything else must ride scalar)."""
        key = id(engine)
        router = self._routers.get(key)
        if router is None:
            router = self.mesh._channel_sink[engine.port._channel]
            notify = engine.notify_space
            cls = type(router)
            if (notify is None
                    or getattr(notify, "__func__", None) is not Router.pump
                    or notify.__self__ is not router
                    or cls.pump is not Router.pump
                    or cls._pump_once is not Router._pump_once):
                router = False
            self._routers[key] = router
        return router

    def _engine_ready(self, engine: Engine, packet: Packet) -> bool:
        """Would the scalar path serve ``packet`` at ``engine``
        immediately, with no interference the lane cannot replay?

        Reference predicate; the hot paths (:meth:`try_ride`,
        :meth:`_try_hop`) inline these exact checks."""
        if self._kind_of(engine) is None:
            return False
        if (engine.fault_mode is not None
                or engine.slowdown != 1.0
                or engine.payload_buffer is not None
                or engine._busy_lanes
                or not engine.queue.is_empty):
            return False
        if packet.kind is _CONTROL:
            return False
        router = self._router_of(engine)
        if router is False or router._buffered or router._express_flights:
            # Parked (refused) messages have no heap event to bound the
            # horizon, and reserved flights must de-speculate against
            # genuine deliveries only.
            return False
        return True

    # ------------------------------------------------------------------
    # Trajectory trains (single frame, whole path)
    # ------------------------------------------------------------------

    def try_ride(self, port, packet: Packet) -> bool:
        """Carry a fresh RX frame down its whole trajectory in one event.

        Called by :meth:`EthernetPort._rx_arrival` in place of its final
        ``_loopback``.  Returns False (mutating nothing) when the ride
        cannot start; the caller then falls back to the scalar loopback.
        """
        sim = self.sim
        horizon = sim.train_horizon()
        if horizon is None:
            self.refusals += 1
            return False
        ann = packet.meta.annotations
        if "__trace__" in ann or "__int__" in ann:
            # Sampled telemetry must observe every intermediate span,
            # and INT must observe genuine depths and egress instants.
            self.refusals += 1
            return False
        # Inlined _engine_ready(port, packet).
        key = id(port)
        kind = self._kinds.get(key, _MISS)
        if kind is _MISS:
            kind = self._kind_of(port)
        if (kind is None
                or port.fault_mode is not None
                or port.slowdown != 1.0
                or port.payload_buffer is not None
                or port._busy_lanes
                or port.queue._heap
                or packet.kind is _CONTROL):
            self.refusals += 1
            return False
        router = self._routers.get(key)
        if router is None:
            router = self._router_of(port)
        if router is False or router._buffered or router._express_flights:
            self.refusals += 1
            return False
        self._h = horizon
        # Engine._loopback: the local re-entry envelope.  Drawing the
        # message id here (first action, as scalar does) keeps the
        # global id sequence aligned; the envelope itself materializes
        # only if the ride hands off mid-service.
        mid = next(_message_ids)
        self.trajectories += 1
        addr = port.address
        now = sim.now
        self._ride(port, kind, router, packet, now, mid, addr, addr, now, 0)
        return True

    def deferred_wire_ride(self, port, packet: Packet, t_arr: int,
                           event) -> None:
        """Try to absorb an un-enqueued wire-arrival event as a train.

        :meth:`EthernetPort.inject_rx` allocates the per-frame
        ``_rx_arrival`` event (reserving its sequence number, hence
        every same-timestamp tie) without enqueuing it, and defers this
        attempt via :meth:`Simulator.defer`.  The kernel runs it only
        after the *injecting* event's callback has fully returned, when
        the event schedule is sealed: anything that callback scheduled
        after the inject call is now pending and bounds the horizon,
        which an inline ride at inject time could never see.  On success
        the event is simply dropped; on refusal it is committed and
        fires exactly as if scheduled at inject time (getting its own
        :meth:`try_ride` chance at arrival time).
        """
        sim = self.sim
        if sim._deferred:
            # Another slot is queued behind this one (several injections
            # in one callback): its own un-enqueued arrival is invisible
            # to the horizon, so only the last slot of a drain may ride.
            self.refusals += 1
            sim.commit_event(event)
            return
        horizon = sim.train_horizon()
        if horizon is None or t_arr >= horizon:
            self.refusals += 1
            sim.commit_event(event)
            return
        if not self.try_wire_ride(port, packet, t_arr, horizon):
            sim.commit_event(event)

    def try_wire_ride(self, port, packet: Packet, t_arr: int,
                      horizon: float) -> bool:
        """Absorb the wire-arrival event and ride from its inject event.

        ``horizon`` is the first instant the ride may *not* touch,
        computed by :meth:`deferred_wire_ride` with the frame's own
        pending arrival event excluded; the caller has already checked
        ``t_arr < horizon``.  When the port would serve the frame
        immediately, the arrival bookkeeping and the whole trajectory
        replay inside this (deferred) slot of the injecting event.
        Returns False (mutating nothing) when ineligible.
        """
        sim = self.sim
        meta = packet.meta
        if ("__trace__" in meta.annotations
                or "__int__" in meta.annotations):
            # Sampled telemetry must observe every intermediate span,
            # and INT must observe genuine depths and egress instants.
            self.refusals += 1
            return False
        # The arrival body below is a replay of the stock _rx_arrival;
        # an override must run scalar.
        if type(port)._rx_arrival is not _STOCK_RX_ARRIVAL:
            self.refusals += 1
            return False
        # Inlined _engine_ready(port, packet), as in try_ride.
        key = id(port)
        kind = self._kinds.get(key, _MISS)
        if kind is _MISS:
            kind = self._kind_of(port)
        if (kind is None
                or port.fault_mode is not None
                or port.slowdown != 1.0
                or port.payload_buffer is not None
                or port._busy_lanes
                or port.queue._heap
                or packet.kind is _CONTROL):
            self.refusals += 1
            return False
        router = self._routers.get(key)
        if router is None:
            router = self._router_of(port)
        if router is False or router._buffered or router._express_flights:
            self.refusals += 1
            return False
        self._h = horizon
        # EthernetPort._rx_arrival at the arrival instant (its
        # payload_buffer branch is unreachable: the readiness check
        # above required payload_buffer is None).
        sim.now = t_arr
        meta.ingress_port = port.port_index
        meta.direction = _RX
        meta.nic_arrival_ps = t_arr
        meta.annotations["mac_rx"] = True
        port.rx_frames.add()
        port.rx_bits.record(t_arr, packet.wire_bits)
        mid = next(_message_ids)
        self.trajectories += 1
        addr = port.address
        self._ride(port, kind, router, packet, t_arr, mid, addr, addr,
                   t_arr, 0)
        return True

    def _ride(self, engine: Engine, kind: str, erouter, packet: Packet,
              t_arr: int, mid: int, src: int, dest: int,
              inject_ps: int, hops: int) -> None:
        """Replay the whole remaining trajectory, one leg per loop pass.

        Each pass serves ``packet`` at an idle ``engine`` -- mirroring
        ``Engine.receive`` + ``Engine._try_start`` + ``Engine._finish``
        (base) or the ``RmtPipelineEngine`` pair (rmt) -- then attempts
        to commit the next NoC traversal arithmetically (mirroring
        ``Mesh._try_express`` + ``ExpressFlight._finish`` and the final
        router's delivery pump) and continues at the target.  Any leg
        that cannot continue executes the *exact* scalar statement at
        the already-advanced clock and ends the ride; every event it
        schedules lies at or after ``now``, so the kernel resumes
        cleanly.

        Pre-conditions, re-established before each pass: the inlined
        ``_engine_ready`` held for ``engine`` (whose local router is
        ``erouter``) and ``now <= t_arr < self._h``.  The
        ``mid``/``src``/``dest``/``inject_ps``/``hops`` quintuple
        describes the in-flight envelope, materialized as a real
        :class:`NocMessage` only on a mid-service handoff.
        """
        sim = self.sim
        kinds = self._kinds
        routers = self._routers
        recipes = self._recipes
        svc = self._svc
        h = self._h
        ann = packet.meta.annotations
        trail = None
        ekey = id(engine)
        while True:
            # One dict hit replaces the leg's ~20 attribute chains; the
            # recipe holds only structurally-final objects (built in the
            # engine's __init__, never reassigned -- see _recipe_of).
            rec = recipes.get(ekey)
            if rec is None:
                rec = self._recipe_of(engine, kind)
            (queue, qseq, qpushed, qlat, slat, processed, name,
             csum_handle, csum_svc, address, lookup_table, lookup_ps,
             inj, expr_cache, ser_cache, injected, meter, ii_ps,
             lat_ps) = rec
            sim.now = t_arr  # monotonic: t_arr >= now on entry
            # receive(): enqueue_ps is stamped then immediately popped
            # by the service start; net effect on annotations is
            # removal.  The rank (_rank_of) is drawn from pure reads
            # and never outlives the fused push/pop.
            ann.pop("enqueue_ps", None)
            # PifoQueue.transit inline: the push's seq draw + counters.
            next(qseq)
            qpushed.value += 1
            if queue.max_occupancy < 1:
                queue.max_occupancy = 1
            # queue_latency.observe(t_arr, t_arr) inline: a zero sample.
            qlat._samples.append(0)
            qlat._sorted = False
            if kind == "rmt":
                # RmtPipelineEngine._try_start (no notify_space there).
                start = engine._next_accept_ps
                if start < t_arr:
                    start = t_arr
                engine._next_accept_ps = start + ii_ps
                t_fin = start + lat_ps
                if t_fin >= h:
                    sim.schedule_at(
                        t_fin, engine._finish_rmt,
                        NocMessage(packet, dest, src, inject_ps, hops, mid),
                        start)
                    self.handoffs += 1
                    return
                # RmtPipelineEngine._finish_rmt at t_fin.
                sim.now = t_fin
                processed.value += 1
                # pps_meter.record(t_fin) inline.
                meter.total += 1.0
                meter.last_ps = t_fin
                slat._samples.append(t_fin - start)
                slat._total += t_fin - start
                slat._sorted = False
                # packet.touch(name) inline; the cached trail list is
                # dropped after every genuine handle()/decide() call and
                # on packet replacement, so it can never go stale.
                if trail is None:
                    trail = ann.get("trail")
                    if trail is None:
                        ann["trail"] = trail = []
                trail.append(name)
                seq = sim._seq
                phv = engine.pipeline.process(
                    packet.data,
                    metadata=engine._intrinsic_metadata(packet),
                    now_ps=t_fin,
                )
                engine.decisions.value += 1
                outputs = engine.decide(packet, phv)
                trail = None
                rmt = True
                if sim._seq != seq or sim._after_hooks:
                    # decide() scheduled events: they may lie below the
                    # old horizon and shrink what the ride may touch.
                    horizon = sim.train_horizon()
                    h = float("-inf") if horizon is None else horizon
                    self._h = h
                if len(outputs) != 1:
                    self._route_multi(engine, outputs, rmt)
                    return
                out_packet, ndest = outputs[0]
            else:
                # Engine._try_start: freed_space -> one notify_space().
                # That is erouter.pump (validated by _router_of) on a
                # router known buffer-free: a single fairness rotation.
                rr = erouter._rr_order
                if rr:
                    rr.append(rr.pop(0))
                if csum_svc:
                    # Stock ChecksumEngine.service_time_ps: pure in its
                    # memo key, so a hit replaces the call.
                    skey = (ekey, len(packet.data),
                            engine.fixed_cycles, engine.cycles_per_byte)
                    delay = svc.get(skey)
                    if delay is None:
                        delay = engine.service_time_ps(packet)
                        if len(svc) >= 1024:
                            svc.clear()
                        svc[skey] = delay
                else:
                    delay = engine.service_time_ps(packet)
                # slowdown == 1.0 and payload_buffer is None by
                # eligibility, so the scalar path's remaining delay
                # adjustments are identity.
                t_fin = t_arr + delay
                if t_fin >= h:
                    # Hand off mid-service: exactly the state _try_start
                    # leaves behind -- a busy lane + a pending _finish.
                    engine._busy_lanes += 1
                    sim.schedule_at(
                        t_fin, engine._finish,
                        NocMessage(packet, dest, src, inject_ps, hops, mid),
                        t_arr)
                    self.handoffs += 1
                    return
                if delay < 0:
                    # Scalar schedule() would refuse; never move the
                    # clock backwards.
                    raise ValueError(
                        f"{name}: negative service time {delay}")
                # Engine._finish at t_fin.
                sim.now = t_fin
                processed.value += 1
                slat._samples.append(delay)
                slat._total += delay
                slat._sorted = False
                if trail is None:
                    trail = ann.get("trail")
                    if trail is None:
                        ann["trail"] = trail = []
                trail.append(name)
                rmt = False
                if csum_handle and packet.meta.direction is not _TX:
                    # ChecksumEngine.handle RX inline (stock by
                    # identity): _verify's memoized verdict, annotation
                    # and counter -- schedules nothing, single
                    # pass-through output, so the refresh and unpack
                    # below are skipped outright.
                    ok = _rx_verdict(packet.data)
                    if ok is not None:
                        ann["csum_ok"] = ok
                        if ok:
                            engine.verified.value += 1
                        else:
                            engine.bad_checksums.value += 1
                    out_packet = packet
                    ndest = None
                else:
                    seq = sim._seq
                    outputs = engine.handle(packet)
                    trail = None
                    if sim._seq != seq or sim._after_hooks:
                        # handle() scheduled events (TX wire, timers):
                        # they may lie below the old horizon and shrink
                        # what the ride may touch.
                        horizon = sim.train_horizon()
                        h = float("-inf") if horizon is None else horizon
                        self._h = h
                    if len(outputs) != 1:
                        self._route_multi(engine, outputs, rmt)
                        return
                    out_packet, ndest = outputs[0]
            # The routing step of _finish/_finish_rmt.
            lookup_delay = 0
            if ndest is None:
                # Engine._route_by_chain inline (stock by whitelist):
                # next chain hop, else the lookup table.
                header = out_packet.panic
                if header is not None and header.cursor < len(header.chain):
                    ndest = header.chain[header.cursor]
                    header.cursor += 1
                else:
                    ndest = lookup_table.lookup(out_packet.kind)
                if not rmt:
                    lookup_delay = lookup_ps
            if ndest is None:
                engine.terminal(out_packet)
                return
            if ndest == address:
                if rmt:
                    engine._loopback(out_packet)
                else:
                    engine.schedule(lookup_delay, engine._loopback,
                                    out_packet)
                return
            # -- Attempt the next traversal: Mesh._try_express's idle
            # scan over the cached express path.  Any failed check falls
            # back to the scalar send (mutating nothing first).
            t_send = t_fin + lookup_delay
            if out_packet is not packet:
                packet = out_packet
                ann = packet.meta.annotations
                trail = None
            if t_send >= h or "__trace__" in ann or "__int__" in ann:
                break
            path = expr_cache.get(ndest, _MISS)
            if path is _MISS:
                path = self.mesh._build_express_path(inj, ndest)
                expr_cache[ndest] = path
            if path is None or (
                    inj._transfer_in_progress or inj._pending
                    or inj._express_flight is not None
                    or inj._fault_drops or inj._fault_corruptions
                    or inj._credits <= 0):
                break
            channels, mid_routers, final_router, checks = path
            busy = False
            for router, out in checks:
                if (router._buffered
                        or out._express_flight is not None
                        or out._transfer_in_progress
                        or out._pending
                        or out._credits <= 0
                        or out._fault_drops
                        or out._fault_corruptions):
                    busy = True
                    break
            if (busy or final_router._buffered
                    or final_router._express_flights):
                break
            target = final_router.endpoint
            if target is None:
                break
            # Inlined _engine_ready(target, packet).
            key = id(target)
            tkind = kinds.get(key, _MISS)
            if tkind is _MISS:
                tkind = self._kind_of(target)
            if (tkind is None
                    or target.fault_mode is not None
                    or target.slowdown != 1.0
                    or target.payload_buffer is not None
                    or target._busy_lanes
                    or target.queue._heap
                    or packet.kind is _CONTROL):
                break
            trouter = routers.get(key)
            if trouter is None:
                trouter = self._router_of(target)
            if (trouter is False or trouter._buffered
                    or trouter._express_flights):
                break
            # packet.chip_bits inline (pointer-mode noc_bits override is
            # impossible here -- payload_buffer engines refuse rides --
            # but honour it anyway to stay a faithful copy).
            override = ann.get("noc_bits")
            if override is not None:
                bits = int(override)
            else:
                header = packet.panic
                extra = header.length if header is not None else 0
                bits = (len(packet.data) + extra) * 8
            ser = ser_cache.get(bits)
            if ser is None:
                ser = inj._serialization_ps(bits)
            n_hops = len(channels)
            t_arrive = t_send + n_hops * ser
            if t_arrive >= h:
                break
            # -- Commit.  NocPort.send at t_send: the message-id draw,
            # then the injected count.
            sim.now = t_send  # t_send = now + lookup_delay
            mid = next(_message_ids)
            injected.value += 1
            # ExpressFlight._finish: arithmetic hop windows.  Per
            # channel, _account_express_hop(bits, begin, begin + ser)
            # inline; the credit debit and return cancel.
            end = t_send
            for channel in channels:
                end += ser
                channel.sent.value += 1
                channel.bits_sent.value += bits
                channel._busy_accum_ps += ser
                if end > channel._busy_until:
                    channel._busy_until = end
            # Per forwarding router, _account_express_forward() inline:
            # one forwarded count + the pump pass's two rotations.
            for router in mid_routers:
                router.forwarded.value += 1
                rr = router._rr_order
                if rr:
                    rr.append(rr.pop(0))
                    rr.append(rr.pop(0))
            # Final delivery: on_deliver -> pump -> endpoint accept.
            # The express credit debit and the pump's release_credit
            # cancel; the delivery counts once, the pump pass rotates
            # once (the accept's own notify_space rotation opens the
            # next loop pass).
            final_router.delivered.value += 1
            rr = final_router._rr_order
            if rr:
                rr.append(rr.pop(0))
            self.trajectory_hops += 1
            src = address
            dest = ndest
            inject_ps = t_send
            hops = n_hops
            engine = target
            ekey = key
            kind = tkind
            erouter = trouter
            t_arr = t_arrive
        # Scalar handoff for the forward that could not ride: exactly
        # _finish's send branch, at the already-advanced clock.
        self.handoffs += 1
        if lookup_delay:
            engine.schedule(lookup_delay, engine.send, packet, ndest)
        else:
            engine.send(packet, ndest)

    def _recipe_of(self, engine: Engine, kind: str) -> tuple:
        """Build and cache the per-engine leg recipe.

        Every entry is an object the engine's ``__init__`` creates and
        no repo code ever reassigns (queue, trackers, counters, the NoC
        port and its channel caches), plus two method-identity flags
        for the stock checksum shortcuts and the RMT engine's constant
        interval/latency.  Mutable *state* (occupancy, busy lanes,
        ``_next_accept_ps``, channel idleness) is always read from the
        live objects, never from the recipe.
        """
        cls = type(engine)
        port = engine.port
        inj = port._channel
        rmt = kind == "rmt"
        rec = (
            engine.queue,
            engine.queue._seq,
            engine.queue.pushed,
            engine.queue_latency,
            engine.service_latency,
            engine.processed,
            engine.name,
            cls.handle is _CHECKSUM_HANDLE,
            cls.service_time_ps is _CHECKSUM_SVC,
            engine.address,
            engine.lookup_table,
            0 if rmt else engine._lookup_ps,
            inj,
            inj._express_paths,
            inj._ser_cache,
            port.injected,
            engine.pps_meter if rmt else None,
            engine.initiation_interval_ps if rmt else 0,
            engine.latency_ps if rmt else 0,
        )
        self._recipes[id(engine)] = rec
        return rec

    def _route_multi(self, engine: Engine, outputs, rmt: bool) -> None:
        """Multicast/drop outputs: the scalar routing loop verbatim
        (``lookup_delay`` latches across iterations exactly as
        ``_finish``'s does), ending the ride."""
        lookup_delay = 0
        for out_packet, dest in outputs:
            if dest is None:
                dest = engine._route_by_chain(out_packet)
                if not rmt:
                    lookup_delay = engine._lookup_ps
            if dest is None:
                engine.terminal(out_packet)
            elif dest == engine.address:
                if rmt:
                    engine._loopback(out_packet)
                else:
                    engine.schedule(lookup_delay, engine._loopback,
                                    out_packet)
            elif lookup_delay:
                engine.schedule(lookup_delay, engine.send, out_packet, dest)
            else:
                engine.send(out_packet, dest)

    # ------------------------------------------------------------------
    # Frame trains (multi-frame batch at one engine)
    # ------------------------------------------------------------------

    def try_batch(self, engine: Engine) -> bool:
        """Service an idle engine's queued frames as one train.

        Called from ``Engine._try_start`` when the queue holds more than
        one frame and no lane is busy (the shape left behind by a stall
        fault recovering, or backpressure releasing).  Computes each
        frame's service window arithmetically, vectorizes the payload
        work through ``service_many``, and replays the scalar
        bookkeeping: per-pop round-robin rotations ride real events at
        their scalar timestamps, sends are scheduled at
        ``finish + lookup``, and a sentinel event at the last finish
        restores the lane.  Returns False (mutating nothing) when any
        frame in pop order fails eligibility before a 2-frame prefix.
        """
        if engine.service_many is Engine.service_many:
            return False
        if (engine.lanes != 1
                or engine.slowdown != 1.0
                or engine.payload_buffer is not None
                or engine.overflow == "backpressure" and engine.queue.is_full):
            return False
        if self._kind_of(engine) != "base":
            return False
        sim = self.sim
        horizon = sim.train_horizon()
        if horizon is None:
            return False
        router = self._router_of(engine)
        if router is False or router._buffered or router._express_flights:
            return False
        address = engine.address
        plan = []
        t = sim.now
        for message, _rank, _droppable in engine.queue.peek_batch():
            packet = message.packet
            if (packet.kind is _CONTROL
                    or "__trace__" in packet.meta.annotations
                    or "__int__" in packet.meta.annotations):
                break
            header = packet.panic
            if header is None or header.exhausted:
                # Lookup-table routing and terminal/loopback shapes stay
                # scalar; chains give a statically checkable route.
                break
            if address in header.chain[header.cursor:]:
                # The chain revisits this engine: the return could land
                # mid-train and contend with pre-popped frames.
                break
            delay = engine.service_time_ps(packet)  # pure by contract
            finish = t + delay
            if finish >= horizon:
                break
            plan.append((message, t, finish))
            t = finish
        if len(plan) < 2:
            return False
        packets = [entry[0].packet for entry in plan]
        outs = engine.service_many(packets)
        if outs is None or len(outs) != len(plan):
            return False
        # -- Commit.  The batch equals this scalar interleaving: pop_1 at
        # now, finish_1 at f_1 (which pops frame 2), ... finish_N at f_N.
        popped = engine.queue.pop_batch(len(plan))
        assert [m for m, _r in popped] == [entry[0] for entry in plan]
        lookup_ps = engine._lookup_ps
        last_finish = plan[-1][2]
        for index, ((message, start, finish), frame_outs) in enumerate(
                zip(plan, outs)):
            packet = message.packet
            enq = packet.meta.annotations.pop("enqueue_ps", start)
            engine.queue_latency.observe(enq, start)
            if index == 0:
                # Pop 1 happens inside this very _try_start call: its
                # notify_space (one rotation) fires now, like scalar.
                if engine.notify_space is not None:
                    engine.notify_space()
            else:
                # Pops 2..N happen inside _finish at the previous
                # frame's finish; their rotations must interleave with
                # any traffic pumping this router mid-train, so they
                # ride real events at the scalar timestamps.
                sim.schedule_at(start, self._batch_rotation, engine)
            engine.processed.value += 1
            engine.service_latency.observe(start, finish)
            packet.touch(engine.name)
            lookup_delay = 0
            for out_packet, dest in frame_outs:
                if dest is None:
                    dest = engine._route_by_chain(out_packet)
                    lookup_delay = lookup_ps
                if dest is None:
                    sim.schedule_at(finish, engine.terminal, out_packet)
                elif dest == address:
                    sim.schedule_at(finish + lookup_delay,
                                    engine._loopback, out_packet)
                elif lookup_delay:
                    sim.schedule_at(finish + lookup_delay,
                                    engine.send, out_packet, dest)
                else:
                    sim.schedule_at(finish, engine.send, out_packet, dest)
            self.batched_frames += 1
        # The lane stays busy until the last finish; the sentinel then
        # mirrors _finish's trailing _try_start (serving anything that
        # arrived exactly at the boundary).
        engine._busy_lanes += 1
        sim.schedule_at(last_finish, self._batch_release, engine)
        self.batches += 1
        return True

    def _batch_rotation(self, engine: Engine) -> None:
        """One scalar pop's notify_space, at its scalar timestamp."""
        if engine.notify_space is not None:
            engine.notify_space()

    def _batch_release(self, engine: Engine) -> None:
        """Sentinel at the train's last finish: free the lane and resume
        the scalar service loop."""
        engine._busy_lanes -= 1
        engine._try_start()
