"""The PANIC NIC: engines + logical switch + logical scheduler (Figure 1).

:class:`PanicNic` assembles the complete architecture:

* a 2D mesh of routers (the unified on-chip network, section 3.1.2);
* Ethernet MAC engines on the west edge, DMA and PCIe engines on the
  east edge (the mesh's external interfaces, as in Figure 3c);
* one heavyweight RMT pipeline engine running the reference program of
  :mod:`repro.core.pipeline_programs`;
* the configured offload engines on the remaining tiles;
* per-engine lightweight lookup tables defaulting back to the RMT
  pipeline;
* a :class:`~repro.core.host.Host` model behind the DMA/PCIe engines.

Use :attr:`control` to program chains/slack, :meth:`inject` to offer
frames at a port, and :attr:`transmitted` to observe egress.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.core.config import PanicConfig, offload_base
from repro.core.host import Host
from repro.core.pipeline_programs import (
    PanicControl,
    build_panic_program,
    panic_decision_factory,
)
from repro.engines.base import Engine
from repro.engines.checksum_engine import ChecksumEngine
from repro.engines.compression import CompressionEngine
from repro.engines.dcqcn import DcqcnEngine, EcnMarkerEngine
from repro.engines.dma import DmaEngine
from repro.engines.ethernet import EthernetPort
from repro.engines.ipsec import IpsecEngine
from repro.engines.kvcache import KvCacheEngine
from repro.engines.pcie import PcieEngine
from repro.engines.ratelimit import RateLimiterEngine
from repro.engines.rdma import RdmaEngine
from repro.engines.regex_engine import RegexEngine
from repro.engines.rmt_engine import RmtPipelineEngine
from repro.noc.mesh import Mesh, MeshConfig
from repro.noc.pktbuffer import PacketBuffer
from repro.packet.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.sim.stats import Counter


class PanicNic:
    """A fully assembled PANIC NIC simulation."""

    def __init__(
        self,
        sim: Simulator,
        config: Optional[PanicConfig] = None,
        name: str = "panic",
    ):
        self.sim = sim
        self.config = config if config is not None else PanicConfig()
        self.name = name
        self.rng = SeededRng(self.config.seed)
        self.transmitted: List[Packet] = []
        self._tx_callbacks: List[Callable[[Packet], None]] = []
        self.rmt_drops = Counter(f"{name}.rmt_drops")
        self.corrupt_drops = Counter(f"{name}.corrupt_drops")
        self.failovers = Counter(f"{name}.failovers")
        #: Whole-NIC power state (repro.faults NIC_DOWN/NIC_UP).  A dark
        #: NIC drops every arriving frame at ingress and vanishes every
        #: frame reaching a transmit MAC; engines keep running
        #: internally, exactly like a host whose links died.
        self.powered = True
        self.dark_rx_drops = Counter(f"{name}.dark_rx_drops")
        self.dark_tx_drops = Counter(f"{name}.dark_tx_drops")
        # Failover policy: primary engine key -> backup engine key, and
        # the set of engine keys already failed over.  An optional
        # HealthMonitor (repro.faults.monitor) drives detection.
        self._backups: Dict[str, str] = {}
        self.failed_engines: set = set()
        self.monitor = None

        self.mesh = Mesh(
            sim,
            MeshConfig(
                width=self.config.mesh_width,
                height=self.config.mesh_height,
                channel_bits=self.config.channel_bits,
                freq_hz=self.config.freq_hz,
                credits=self.config.noc_credits,
                fast_path=self.config.fast_path,
            ),
            name=f"{name}.mesh",
        )
        self.host = Host(
            sim,
            name=f"{name}.host",
            rx_queues=self.config.rx_queues,
            tx_queues=self.config.tx_queues,
            mem_base_ps=self.config.host_mem_base_ps,
            mem_jitter_ps=self.config.host_mem_jitter_ps,
            software_delay_ps=self.config.host_software_delay_ps,
            rng=self.rng.fork("hostmem"),
        )
        self.payload_buffer: Optional[PacketBuffer] = None
        if self.config.payload_mode == "pointer":
            self.payload_buffer = PacketBuffer(
                sim,
                name=f"{name}.pktbuf",
                capacity_bytes=self.config.pktbuf_capacity_bytes,
                ports=self.config.pktbuf_ports,
                freq_hz=self.config.freq_hz,
            )
        self.engines: Dict[str, Engine] = {}
        self.ports: List[EthernetPort] = []
        self._build_engines()
        self._wire()
        self.telemetry = None
        tcfg = self.config.telemetry
        if tcfg is not None and tcfg.enabled:
            from repro.telemetry import Telemetry

            self.telemetry = Telemetry(self)
        #: In-band network telemetry agent (repro.telemetry.int_); None
        #: keeps every hook on a single attribute check.
        self.int_agent = None
        icfg = self.config.int_
        if icfg is not None and icfg.enabled:
            from repro.telemetry.int_ import IntAgent

            digits = "".join(c for c in name if c.isdigit())
            self.int_agent = IntAgent(
                self, icfg,
                node_id=int(digits) if digits else 0,
                rmt_names=[tile.name for tile in self.rmt_tiles],
            )
            for engine in self.engines.values():
                engine._int_tap = self.int_agent
            for eth in self.ports:
                eth._int_agent = self.int_agent
            self.host._int_sink = self.int_agent
        #: Batched-execution driver (repro.core.train); None keeps every
        #: hook on the scalar path at the cost of one attribute check.
        self.train_lane = None
        if self.config.batch_execution:
            from repro.core.train import TrainLane

            self.train_lane = TrainLane(self)
            for engine in self.engines.values():
                engine._train_lane = self.train_lane
        #: Host-side reliable transport, when the workload attaches one
        #: (see :mod:`repro.reliability`); surfaces in ``stats()``.
        self.transport = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def _tile_iter(self):
        for y in range(self.config.mesh_height):
            for x in range(self.config.mesh_width):
                yield (x, y)

    def _build_engines(self) -> None:
        cfg = self.config
        used: set = set()
        overrides = dict(cfg.placement or {})

        def place(engine: Engine, key: str, x: int, y: int) -> None:
            x, y = overrides.get(key, (x, y))
            port = self.mesh.bind(engine, x, y)
            engine.bind_port(port)
            self.engines[key] = engine
            used.add((x, y))

        # Ethernet MACs down the west edge (Figure 3c), spilling into the
        # next column on big-radix configs (rack rows cable one port per
        # peer, quickly outgrowing one column).  The east-edge tiles
        # reserved below for DMA/PCIe are never handed out, and configs
        # with ports <= mesh_height keep their historical column-0 spots.
        # A user override colliding with an auto-placed MAC raises at
        # bind time, the same conflict detection as always.
        reserved_east = {
            (cfg.mesh_width - 1, 0),
            (cfg.mesh_width - 1, 1 % cfg.mesh_height),
        }
        eth_tiles = (
            t for t in ((x, y) for x in range(cfg.mesh_width)
                        for y in range(cfg.mesh_height))
            if t not in used and t not in reserved_east
        )
        for i in range(cfg.ports):
            mac = EthernetPort(
                self.sim,
                f"{self.name}.eth{i}",
                port_index=i,
                line_rate_bps=cfg.line_rate_bps,
                freq_hz=cfg.freq_hz,
                on_transmit=self._on_transmit,
            )
            x, y = overrides.get(f"eth{i}") or next(eth_tiles)
            place(mac, f"eth{i}", x, y)
            self.ports.append(mac)

        # DMA and PCIe engines on the east edge.
        east = cfg.mesh_width - 1
        self.dma = DmaEngine(
            self.sim,
            f"{self.name}.dma",
            freq_hz=cfg.freq_hz,
            queue_capacity=cfg.queue_capacity,
            overflow=cfg.overflow,
        )
        place(self.dma, "dma", east, 0)
        self.pcie = PcieEngine(
            self.sim,
            f"{self.name}.pcie",
            coalesce_count=cfg.coalesce_count,
            coalesce_timeout_ps=cfg.coalesce_timeout_ps,
            freq_hz=cfg.freq_hz,
        )
        place(self.pcie, "pcie", east, 1 % cfg.mesh_height)

        # Heavyweight RMT pipeline tiles near the middle (Figure 3c).
        # All tiles execute the same program, so there is one control
        # plane; Ethernet ports spread across the tiles round-robin.
        port_addrs = [self.engines[f"eth{i}"].address for i in range(cfg.ports)]
        program = build_panic_program(
            dma_addr=self.dma.address,
            port_addrs=port_addrs,
            rx_queues=cfg.rx_queues,
        )
        decision = panic_decision_factory(self)
        self.rmt_tiles: List[RmtPipelineEngine] = []
        # Candidate tiles for the pipeline, central columns first.
        rmt_candidates = sorted(
            (t for t in self._tile_iter()
             if t not in used and t not in overrides.values()),
            key=lambda t: (abs(t[0] - 1), t[1]),
        )
        for tile_index in range(cfg.rmt_tiles):
            rmt_x, rmt_y = rmt_candidates.pop(0)
            suffix = "" if tile_index == 0 else str(tile_index)
            engine = RmtPipelineEngine(
                self.sim,
                f"{self.name}.rmt{suffix}",
                program,
                pipelines=cfg.rmt_pipelines,
                chained_engines=cfg.rmt_chained_engines,
                freq_hz=cfg.freq_hz,
                memo=cfg.rmt_memo,
            )
            place(engine, f"rmt{suffix}", rmt_x, rmt_y)
            engine.decision_handler = decision
            self.rmt_tiles.append(engine)
        self.rmt = self.rmt_tiles[0]

        # Offload engines on the remaining tiles.
        common = dict(
            freq_hz=cfg.freq_hz,
            queue_capacity=cfg.queue_capacity,
            overflow=cfg.overflow,
        )
        factories = {
            "ipsec": lambda nm, p: IpsecEngine(self.sim, nm, **common, **p),
            "compression": lambda nm, p: CompressionEngine(self.sim, nm, **common, **p),
            "kvcache": lambda nm, p: KvCacheEngine(self.sim, nm, **common, **p),
            "rdma": lambda nm, p: RdmaEngine(self.sim, nm, **common, **p),
            "checksum": lambda nm, p: ChecksumEngine(self.sim, nm, **common, **p),
            "regex": lambda nm, p: RegexEngine(self.sim, nm, **common, **p),
            "ratelimit": lambda nm, p: RateLimiterEngine(self.sim, nm, **common, **p),
            "dcqcn": lambda nm, p: DcqcnEngine(self.sim, nm, **common, **p),
            "ecnmark": lambda nm, p: EcnMarkerEngine(self.sim, nm, **common, **p),
        }
        reserved = set(overrides.values())
        tiles = (t for t in self._tile_iter()
                 if t not in used and t not in reserved)
        for offload_name in cfg.offloads:
            x, y = overrides.get(offload_name) or next(tiles)
            params = cfg.offload_params.get(offload_name, {})
            factory = factories[offload_base(offload_name)]
            engine = factory(f"{self.name}.{offload_name}", params)
            place(engine, offload_name, x, y)

        self.control = PanicControl(
            program,
            {key: engine.address for key, engine in self.engines.items()},
            dma_addr=self.dma.address,
            port_addrs=port_addrs,
        )

    def _wire(self) -> None:
        rmt_addr = self.rmt.address
        for key, engine in self.engines.items():
            if engine in self.rmt_tiles:
                continue
            engine.lookup_table.default_next = rmt_addr
        # Spread ingress classification across the RMT tiles (Fig. 3c:
        # multiple RMT engines compose the heavyweight pipeline).
        for index, mac in enumerate(self.ports):
            tile = self.rmt_tiles[index % len(self.rmt_tiles)]
            mac.lookup_table.default_next = tile.address
        # Ethernet ports transmit when a chain ends there, so their
        # default only applies to fresh RX frames -- which is exactly the
        # RMT pipeline.  (handle() separates the two cases.)
        self.dma.pcie_addr = self.pcie.address
        self.dma.attach_host(self.host)
        self.pcie.dma_addr = self.dma.address
        self.pcie.attach_host(self.host)
        self.host.pcie = self.pcie
        rdma = self.engines.get("rdma")
        if rdma is not None:
            rdma.dma_addr = self.dma.address
        if self.payload_buffer is not None:
            for engine in self.engines.values():
                engine.payload_buffer = self.payload_buffer
        dcqcn = self.engines.get("dcqcn")
        if dcqcn is not None and "ratelimit" in self.engines:
            dcqcn.attach_limiter(self.engines["ratelimit"])
        ecnmark = self.engines.get("ecnmark")
        if ecnmark is not None:
            # By default the marker watches the DMA engine's queue --
            # the congestion point on the receive path.
            ecnmark.watch_engine = self.dma

    def _on_transmit(self, packet: Packet) -> None:
        if not self.powered:
            # Dark at the MAC: the frame serialized internally but never
            # makes it onto the wire.
            self.dark_tx_drops.add()
            return
        self.transmitted.append(packet)
        for callback in self._tx_callbacks:
            callback(packet)

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------

    def offload(self, name: str) -> Engine:
        """Look up an engine by its short name (e.g. ``"ipsec"``)."""
        try:
            return self.engines[name]
        except KeyError:
            raise KeyError(
                f"no engine {name!r}; have {sorted(self.engines)}"
            ) from None

    def inject(self, packet: Packet, port: int = 0) -> int:
        """Offer a frame at an Ethernet port; returns wire-arrival time."""
        if not 0 <= port < len(self.ports):
            raise ValueError(f"no port {port}; NIC has {len(self.ports)}")
        if not self.powered:
            self.dark_rx_drops.add()
            return self.sim.now
        packet.meta.created_ps = packet.meta.created_ps or self.sim.now
        if self.telemetry is not None:
            # Sampling decision at the NIC boundary, in arrival order:
            # wire and shard-boundary deliveries both funnel through
            # inject, so the sampled set is execution-mode independent.
            self.telemetry.tracer.maybe_trace(packet, self.sim.now, port)
        if self.int_agent is not None:
            # Normalize the carried INT stack (side-channel tuple or
            # in-band trailer) before the frame pays RX serialization.
            self.int_agent.on_inject(packet)
        return self.ports[port].inject_rx(packet)

    def on_transmit(self, callback: Callable[[Packet], None]) -> None:
        """Register an egress observer."""
        self._tx_callbacks.append(callback)

    def set_power(self, on: bool) -> None:
        """Turn the NIC's external-facing MACs on or off.

        Off is *dark*, not *dead*: internal engines, timers, and the
        host keep running, but nothing crosses the Ethernet boundary in
        either direction (with ``dark_rx_drops``/``dark_tx_drops``
        accounting).  This is what a crashed backend looks like to the
        rest of the rack -- the failure the load balancer's health
        monitor detects.  Driven by ``FaultPlan.nic_down``/``nic_up``.
        """
        self.powered = bool(on)

    # ------------------------------------------------------------------
    # Fault tolerance
    # ------------------------------------------------------------------

    def set_backup(self, primary: str, backup: str) -> None:
        """Declare ``backup`` as the failover target for ``primary``.

        On :meth:`handle_engine_failure` the control plane re-steers
        every chain through the backup engine instead.
        """
        self.offload(primary)
        self.offload(backup)
        self._backups[primary] = backup

    def handle_engine_failure(self, key: str) -> Optional[str]:
        """Recover from a failed engine by recomputing routes around it.

        Rewrites per-engine :class:`LocalLookupTable` entries and the RMT
        program's offload chains to point at the configured backup, or to
        skip the hop entirely when no backup exists.  Idempotent per
        engine.  Returns the backup key used (None when the hop was
        removed instead).
        """
        failed = self.offload(key)
        if key in self.failed_engines:
            return self._backups.get(key)
        self.failed_engines.add(key)
        backup_key = self._backups.get(key)
        backup_addr: Optional[int] = None
        if backup_key is not None:
            backup_addr = self.offload(backup_key).address
        old_addr = failed.address
        for other in self.engines.values():
            if other is failed:
                continue
            other.lookup_table.remap(old_addr, backup_addr)
        self.control.remap_engine(old_addr, backup_addr)
        self.failovers.add()
        return backup_key

    def stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregate per-engine statistics for reporting."""
        out: Dict[str, Dict[str, float]] = {}
        for key, engine in self.engines.items():
            entry = {
                "processed": engine.processed.value,
                "backlog": engine.backlog,
                "queue_max": engine.queue.max_occupancy,
                "dropped": engine.queue.dropped.value,
            }
            if engine.queue_latency.count:
                entry["queue_latency_ns_p99"] = engine.queue_latency.percentile_ns(99)
            if engine.blackholed.value:
                entry["blackholed"] = engine.blackholed.value
            if engine.queue.rank_corruptions.value:
                entry["rank_corruptions"] = engine.queue.rank_corruptions.value
            out[key] = entry
        out["host"] = {
            "rx_delivered": self.host.rx_delivered.value,
            "interrupts": self.host.interrupts_taken.value,
            "mem_reads": self.host.mem_reads.value,
        }
        out["nic"] = {
            "transmitted": len(self.transmitted),
            "rmt_drops": self.rmt_drops.value,
        }
        faults: Dict[str, float] = {
            "corrupt_drops": self.corrupt_drops.value,
            "failovers": self.failovers.value,
            "failed_engines": len(self.failed_engines),
            "dark_rx_drops": self.dark_rx_drops.value,
            "dark_tx_drops": self.dark_tx_drops.value,
            "blackholed": sum(
                e.blackholed.value for e in self.engines.values()
            ),
            "link_corruptions": sum(
                ch.corrupted.value for ch in self.mesh.channels
            ),
            "link_drops": sum(
                ch.dropped_flits.value for ch in self.mesh.channels
            ),
            "leaked_credits": sum(
                ch.leaked_credits.value for ch in self.mesh.channels
            ),
            "pifo_rank_corruptions": sum(
                e.queue.rank_corruptions.value for e in self.engines.values()
            ),
        }
        if self.monitor is not None:
            faults.update(self.monitor.stats())
        out["faults"] = faults
        if self.transport is not None:
            out["reliability"] = self.transport.stats()
        if self.int_agent is not None:
            out["int"] = self.int_agent.summary()
        return out
