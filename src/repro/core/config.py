"""Configuration for building a PANIC NIC."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.sim.clock import MHZ, NS, US
from repro.telemetry.config import IntConfig, TelemetryConfig

#: Offload engines the builder knows how to instantiate.
KNOWN_OFFLOADS = (
    "ipsec",
    "compression",
    "kvcache",
    "rdma",
    "checksum",
    "regex",
    "ratelimit",
    "dcqcn",
    "ecnmark",
)


def offload_base(name: str) -> str:
    """Engine type behind an instanced offload name (``"ipsec1"`` ->
    ``"ipsec"``): a trailing number distinguishes extra lanes of one
    type."""
    return name.rstrip("0123456789")


@dataclass
class PanicConfig:
    """Every knob of the reference PANIC NIC.

    Defaults follow the paper's reference design point: a two-port
    100 Gbps NIC, a 500 MHz on-chip clock, and a 4x4 mesh large enough
    for the section 3.2 example's engine set.
    """

    # External interfaces.
    ports: int = 2
    line_rate_bps: float = 100e9

    # On-chip network (Table 3 parameters).
    mesh_width: int = 4
    mesh_height: int = 4
    channel_bits: int = 128
    freq_hz: float = 500 * MHZ
    noc_credits: int = 8
    # Cut-through express transfers over idle NoC paths (repro.noc.express).
    # Purely a simulator-speed optimisation: simulated timestamps, delivery
    # order, and quiesced statistics are identical with it off.
    fast_path: bool = True
    # Flow-keyed RMT trajectory memo (repro.rmt.pipeline.TrajectoryMemo):
    # repeat flows skip the match machinery but re-execute every action.
    # Same equivalence contract as fast_path -- purely a simulator-speed
    # optimisation, invalidated on any table or register mutation.
    rmt_memo: bool = True

    # Heavyweight RMT pipeline (section 4.2: F * P pps).
    rmt_pipelines: int = 2
    rmt_chained_engines: int = 1
    #: Number of RMT engine tiles composing the heavyweight pipeline
    #: (Figure 3c draws four).  Tiles share one program/control plane;
    #: Ethernet ports are spread across them round-robin.
    rmt_tiles: int = 1

    # Host interface.
    rx_queues: int = 4
    tx_queues: int = 4
    coalesce_count: int = 8
    coalesce_timeout_ps: int = 10 * US
    host_mem_base_ps: int = 90 * NS
    host_mem_jitter_ps: int = 20 * NS
    host_software_delay_ps: int = 2 * US

    # Which offload engines to instantiate, and their constructor kwargs.
    # A numeric suffix instantiates another lane of the same engine type
    # ("ipsec", "ipsec1" builds two IPSec engines), e.g. for failover
    # spares or parallel-lane scaling; params are keyed by the full name.
    offloads: Tuple[str, ...] = ("ipsec", "compression", "kvcache", "rdma")
    offload_params: Dict[str, dict] = field(default_factory=dict)

    # Engine scheduling queues (None = unbounded; see section 4.3) and
    # the lossless-overflow policy ("raise" or "backpressure", section 6).
    queue_capacity: Optional[int] = None
    overflow: str = "raise"

    # Payload transport over the NoC (section 6): "full" carries whole
    # frames between engines; "pointer" parks payloads in a shared
    # packet buffer and carries descriptors only.
    payload_mode: str = "full"
    pktbuf_capacity_bytes: int = 2 << 20
    pktbuf_ports: int = 2

    # RX integrity: verify IPv4/UDP checksums at classification and drop
    # corrupted frames with accounting (PanicNic.corrupt_drops) instead of
    # propagating them.  Off by default -- the checks cost pipeline work
    # and matter only when links can corrupt (see repro.faults).
    verify_checksums: bool = False

    # Optional explicit engine placement: engine key -> (x, y) tile.
    # Keys: "eth0"..., "rmt", "dma", "pcie", and offload names.  Engines
    # without an entry fall back to the default Figure-3c layout.  See
    # repro.noc.placement for optimizers that produce these maps.
    placement: Optional[Dict[str, Tuple[int, int]]] = None

    # Batched execution (repro.core.train): trajectory trains replay a
    # frame's whole path in one kernel event over quiescent windows, and
    # frame trains service a backlogged engine's queue as one batch with
    # vectorized per-frame work.  Same equivalence contract as fast_path
    # and rmt_memo -- stats, timestamps, deliveries, and RNG draws are
    # bit-identical with it on or off; trains break up (refuse or hand
    # off to the scalar machinery) whenever contention, armed faults,
    # sampled telemetry, or a run()/shard window boundary could observe
    # an intermediate state.
    batch_execution: bool = False

    # In-sim telemetry (repro.telemetry): per-packet spans + component
    # probes.  None (default) builds no telemetry at all; instrumented
    # paths then pay only a None check.  Observation-only either way --
    # stats() and timestamps are bit-identical with it on or off.
    telemetry: Optional[TelemetryConfig] = None

    # In-band network telemetry (repro.telemetry.int_): the data plane
    # stamps per-hop records into frames; sinks emit flow postcards.
    # None (default) builds no INT agent.  Side-channel mode (the
    # IntConfig default) is observation-only; inband=True grows frames
    # with real trailer bytes, which *changes* wire timing (identically
    # between execution modes).
    int_: Optional[IntConfig] = None

    # Determinism.
    seed: int = 0

    def __post_init__(self) -> None:
        if self.ports < 1:
            raise ValueError(f"need at least one Ethernet port, got {self.ports}")
        if self.line_rate_bps <= 0:
            raise ValueError("line rate must be positive")
        if self.payload_mode not in ("full", "pointer"):
            raise ValueError(
                f"payload_mode must be 'full' or 'pointer', got "
                f"{self.payload_mode!r}"
            )
        unknown = [
            name for name in self.offloads
            if offload_base(name) not in KNOWN_OFFLOADS
        ]
        if unknown:
            raise ValueError(
                f"unknown offloads {unknown}; known: {KNOWN_OFFLOADS}"
            )
        if len(set(self.offloads)) != len(self.offloads):
            raise ValueError(f"duplicate offload names in {self.offloads}")
        if self.rmt_tiles < 1:
            raise ValueError(f"need at least one RMT tile, got {self.rmt_tiles}")
        tiles_needed = self.ports + 2 + self.rmt_tiles + len(self.offloads)
        if tiles_needed > self.mesh_width * self.mesh_height:
            raise ValueError(
                f"{tiles_needed} engines do not fit a "
                f"{self.mesh_width}x{self.mesh_height} mesh"
            )

    @property
    def tiles(self) -> int:
        return self.mesh_width * self.mesh_height
