"""The host model: memory, descriptor rings, interrupts, software.

The substrate PANIC's DMA/PCIe engines talk to.  It models:

* **host memory** -- a key-value store readable by DMA (the backing store
  for the RDMA fast path) with *variable* access latency: base cost plus
  jitter plus a contention term that experiments crank up to reproduce
  section 3.2's "due to possible memory contention from applications on
  the main CPU, the DMA engine has variable performance";
* **receive/transmit descriptor rings** per queue;
* **interrupts** with a software-processing delay, after which a pluggable
  handler (e.g. :class:`HostKvServer`) consumes delivered packets and may
  enqueue transmit frames and ring the doorbell.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from repro.packet.builder import parse_frame
from repro.packet.headers import HeaderError
from repro.packet.kv import KvOpcode, KvRequest, KvResponse, KvStatus, KV_UDP_PORT
from repro.packet.packet import Packet
from repro.sim.clock import NS, US
from repro.sim.kernel import Component, Simulator
from repro.sim.rng import SeededRng
from repro.sim.stats import Counter, LatencyTracker


class Host(Component):
    """Main memory + descriptor rings + interrupt-driven software."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "host",
        rx_queues: int = 4,
        tx_queues: int = 4,
        mem_base_ps: int = 90 * NS,
        mem_jitter_ps: int = 20 * NS,
        software_delay_ps: int = 2 * US,
        rng: Optional[SeededRng] = None,
    ):
        super().__init__(sim, name)
        if rx_queues < 1 or tx_queues < 1:
            raise ValueError(f"{name}: need at least one RX and TX queue")
        self.rx_rings: List[Deque[Packet]] = [deque() for _ in range(rx_queues)]
        self.tx_rings: List[Deque[bytes]] = [deque() for _ in range(tx_queues)]
        self.memory: Dict[bytes, bytes] = {}
        self.mem_base_ps = mem_base_ps
        self.mem_jitter_ps = mem_jitter_ps
        #: Extra latency from co-running applications; experiments set it.
        self.contention_ps = 0
        self.software_delay_ps = software_delay_ps
        self.rng = rng if rng is not None else SeededRng(0)
        #: Called for each RX packet during interrupt processing.
        self.software_handler: Optional[Callable[[Packet, int], None]] = None
        #: The PCIe engine, once attached (for doorbells).
        self.pcie = None
        self.rx_delivered = Counter(f"{name}.rx_delivered")
        self.interrupts_taken = Counter(f"{name}.interrupts")
        self.mem_reads = Counter(f"{name}.mem_reads")
        self.mem_writes = Counter(f"{name}.mem_writes")
        self.software_latency = LatencyTracker(f"{name}.software_latency")
        # Set by repro.telemetry; None-checked on the RX-ring path only.
        self._tracer = None
        # Set by repro.telemetry.int_: the INT sink that pops a frame's
        # hop stack into a postcard when the frame reaches the RX ring.
        self._int_sink = None

    # ------------------------------------------------------------------
    # Memory (what the DMA engine touches)
    # ------------------------------------------------------------------

    def memory_latency_ps(self) -> int:
        """One memory access worth of latency, with jitter + contention."""
        jitter = self.rng.randint(0, self.mem_jitter_ps) if self.mem_jitter_ps else 0
        return self.mem_base_ps + jitter + self.contention_ps

    def memory_read(self, key: Optional[bytes]) -> Optional[bytes]:
        self.mem_reads.add()
        if key is None:
            return None
        return self.memory.get(bytes(key))

    def memory_write(self, key: Optional[bytes], data: bytes) -> None:
        self.mem_writes.add()
        if key is not None:
            self.memory[bytes(key)] = bytes(data)

    def store(self, key: bytes, value: bytes) -> None:
        """Pre-populate host memory (workload setup)."""
        self.memory[bytes(key)] = bytes(value)

    # ------------------------------------------------------------------
    # Descriptor rings (what the DMA engine fills/drains)
    # ------------------------------------------------------------------

    def write_rx(self, packet: Packet, queue: int) -> None:
        if not 0 <= queue < len(self.rx_rings):
            queue = 0
        packet.meta.annotations["host_rx_ps"] = self.now
        if self._tracer is not None:
            ctx = packet.meta.annotations.get("__trace__")
            if ctx is not None:
                self._tracer.instant(ctx, "host", self.name, self.now,
                                     (("queue", queue),))
        if self._int_sink is not None:
            # Pops the INT stack into a postcard and strips the in-band
            # trailer, so the ring holds the original frame bytes.
            self._int_sink.on_host_deliver(packet, queue, self.now)
        self.rx_rings[queue].append(packet)
        self.rx_delivered.add()

    def pop_tx(self, queue: int) -> Optional[bytes]:
        if not 0 <= queue < len(self.tx_rings):
            return None
        ring = self.tx_rings[queue]
        return ring.popleft() if ring else None

    def enqueue_tx(self, frame: bytes, queue: int = 0) -> None:
        """Software posts a frame and rings the doorbell."""
        if not 0 <= queue < len(self.tx_rings):
            raise ValueError(f"{self.name}: no TX queue {queue}")
        self.tx_rings[queue].append(frame)
        if self.pcie is not None:
            self.pcie.ring_doorbell(queue)

    # ------------------------------------------------------------------
    # Interrupts and software
    # ------------------------------------------------------------------

    def interrupt(self, completion_count: int) -> None:
        """PCIe engine raised an interrupt; software runs after a delay."""
        self.interrupts_taken.add()
        self.schedule(self.software_delay_ps, self._software_pass)

    def _software_pass(self) -> None:
        for queue, ring in enumerate(self.rx_rings):
            while ring:
                packet = ring.popleft()
                arrived = packet.meta.annotations.get("host_rx_ps", self.now)
                self.software_latency.observe(arrived, self.now)
                if self.software_handler is not None:
                    self.software_handler(packet, queue)

    @property
    def rx_backlog(self) -> int:
        return sum(len(ring) for ring in self.rx_rings)


class HostKvServer:
    """Software key-value server running on the host CPU.

    Handles the requests the NIC could not serve (cache misses, SETs):
    GETs read host memory, SETs write it (and append to a log, matching
    the section 3.2 walk-through), and each request generates a response
    frame pushed to a TX ring with a doorbell.
    """

    def __init__(self, host: Host, per_request_ps: int = 500 * NS):
        self.host = host
        self.per_request_ps = per_request_ps
        self.requests_served = Counter("host_kv.requests")
        self.sets = Counter("host_kv.sets")
        self.gets = Counter("host_kv.gets")
        self.deletes = Counter("host_kv.deletes")
        self.log: List[bytes] = []
        host.software_handler = self.handle_packet

    def handle_packet(self, packet: Packet, queue: int) -> None:
        try:
            frame = parse_frame(packet.data)
            if not frame.is_kv or not frame.payload:
                return
            if frame.payload[0] == KvOpcode.RESPONSE:
                return
            request = frame.kv_request()
        except HeaderError:
            return
        # Model software service time by deferring the response.
        self.host.schedule(
            self.per_request_ps, self._serve, packet, frame, request, queue
        )

    def _serve(self, packet: Packet, frame, request: KvRequest, queue: int) -> None:
        self.requests_served.add()
        if request.opcode == KvOpcode.GET:
            self.gets.add()
            value = self.host.memory.get(bytes(request.key))
            if value is None:
                response = KvResponse(
                    KvStatus.NOT_FOUND, request.tenant, request.request_id
                )
            else:
                response = KvResponse(
                    KvStatus.OK, request.tenant, request.request_id, value
                )
        elif request.opcode == KvOpcode.SET:
            self.sets.add()
            self.host.memory[bytes(request.key)] = bytes(request.value)
            self.log.append(bytes(request.value))
            response = KvResponse(KvStatus.OK, request.tenant, request.request_id)
        elif request.opcode == KvOpcode.DELETE:
            self.deletes.add()
            existed = self.host.memory.pop(bytes(request.key), None) is not None
            status = KvStatus.OK if existed else KvStatus.NOT_FOUND
            response = KvResponse(status, request.tenant, request.request_id)
        else:
            return
        from repro.packet.builder import build_udp_frame

        assert frame.ipv4 is not None and frame.udp is not None
        reply = build_udp_frame(
            src_mac=frame.eth.dst,
            dst_mac=frame.eth.src,
            src_ip=frame.ipv4.dst,
            dst_ip=frame.ipv4.src,
            src_port=KV_UDP_PORT,
            dst_port=frame.udp.src_port,
            payload=response.pack(),
            identification=request.request_id & 0xFFFF,
        )
        self.host.enqueue_tx(reply, queue % len(self.host.tx_rings))
