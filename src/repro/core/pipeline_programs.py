"""The reference RMT program for PANIC and its control-plane API.

The heavyweight pipeline's job (section 3.1.2): parse complex headers,
determine the chain of offloads for each message, load-balance across
descriptor queues, and compute slack times for the logical scheduler.

The program built here has these stages (tables):

1. ``ipsec_rx``      -- ESP packets get chain [ipsec]; after decryption
                        the packet re-enters the pipeline (second pass).
2. ``ipsec_tx``      -- TX packets to configured WAN subnets get an
                        encrypt annotation and chain [ipsec, port].
3. ``kv_route``      -- KV opcodes choose the cache/RDMA fast path.
4. ``tenant_route``  -- per-tenant custom offload chains.
5. ``tenant_slack``  -- per-tenant slack for the logical scheduler.
6. ``rx_steer``      -- RSS-style receive-queue selection.
7. ``default_route`` -- RX falls back to [dma]; TX to its egress port.

:class:`PanicControl` wraps table programming in intent-level calls used
by examples and benchmarks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.packet.headers import IP_PROTO_ESP
from repro.packet.kv import KvOpcode
from repro.rmt.action import ActionContext, decode_chain
from repro.rmt.phv import Phv
from repro.rmt.pipeline import RmtProgram
from repro.rmt.table import MatchKey, MatchKind
from repro.sim.clock import US

#: meta.direction values as seeded by the RMT engine wrapper.
DIR_RX = b"rx"
DIR_TX = b"tx"

#: Slack applied when no tenant/DSCP policy matched (a lenient 1 ms).
DEFAULT_SLACK_PS = 1000 * US


def set_chain_if_empty(phv: Phv, ctx: ActionContext, *, chain: List[int]) -> None:
    """Install a chain only when no earlier stage chose one."""
    if not phv.get_or("meta.chain", b""):
        blob = b"".join(addr.to_bytes(2, "big") for addr in chain)
        phv.set("meta.chain", blob)


def encrypt_via(
    phv: Phv, ctx: ActionContext, *, spi: int, chain: List[int]
) -> None:
    """Mark a TX packet for ESP encryption and route it via IPSec."""
    phv.set("meta.ipsec_spi", spi)
    blob = b"".join(addr.to_bytes(2, "big") for addr in chain)
    phv.set("meta.chain", blob)


def police(phv: Phv, ctx: ActionContext, *, slack_ps: int) -> None:
    """Worst-class traffic: maximal-slack deadline *and* droppable.

    Used for attack-class DSCPs so the logical scheduler sheds this
    traffic first under memory pressure (sections 4.3 and 6).
    """
    phv.set("meta.slack_deadline_ps", ctx.now_ps + slack_ps)
    phv.set("meta.droppable", 1)


def build_panic_program(
    *,
    dma_addr: int,
    port_addrs: Sequence[int],
    rx_queues: int = 4,
) -> RmtProgram:
    """Construct the reference program (tables empty where control-plane
    entries are expected; defaults functional out of the box)."""
    program = RmtProgram("panic-reference")
    program.add_action("set_chain_if_empty", set_chain_if_empty)
    program.add_action("encrypt_via", encrypt_via)
    program.add_action("police", police)
    program.add_register("rr_queue", 1)

    # Stage 1: ESP on receive -> decrypt first.
    program.add_table(
        "ipsec_rx",
        [MatchKey("meta.direction"), MatchKey("ipv4.proto")],
        requires="ipv4.proto",
    )
    # Stage 2: encrypt selected TX destinations (LPM on outer dst).
    program.add_table(
        "ipsec_tx",
        [MatchKey("meta.direction"), MatchKey("ipv4.dst", MatchKind.LPM)],
        requires="ipv4.dst",
    )
    # Stage 3: KV fast-path routing.
    program.add_table(
        "kv_route",
        [MatchKey("meta.direction"), MatchKey("kv.opcode")],
        requires="kv.opcode",
    )
    # Stage 4: per-tenant offload chains.
    program.add_table(
        "tenant_route",
        [MatchKey("meta.direction"), MatchKey("kv.tenant")],
        requires="kv.tenant",
    )
    # Stage 4b: DSCP-classified offload chains (non-KV traffic).
    program.add_table(
        "dscp_route",
        [MatchKey("meta.direction"), MatchKey("ipv4.dscp")],
        requires="ipv4.dscp",
    )
    # Stage 4c: L4-port-classified chains (control protocols like CNP).
    program.add_table(
        "port_route",
        [MatchKey("meta.direction"), MatchKey("udp.dst_port")],
        requires="udp.dst_port",
    )
    # Stage 4d: rack flow-tag classified chains.  The parser's rack_tag
    # state writes ``rack.tag`` for RACK_TAG_UDP_PORT traffic; tables
    # keyed on the 16-bit tag scale all-pairs flow identity past the
    # 6-bit DSCP ceiling (rack rows of 32-128+ NICs).
    program.add_table(
        "tag_route",
        [MatchKey("meta.direction"), MatchKey("rack.tag")],
        requires="rack.tag",
    )
    # Stage 4e: L4 load balancing (repro.lb).  ``vip_steer`` matches
    # packets addressed to a virtual IP and runs ``affinity_steer`` --
    # consistent-hash backend selection with Register-backed connection
    # affinity.  The dst key is ternary so the control plane can install
    # a new rule *epoch* at a higher priority before garbage-collecting
    # the masked old one (make-before-break, DESIGN.md section 17).
    program.add_table(
        "vip_steer",
        [MatchKey("meta.direction"), MatchKey("ipv4.dst", MatchKind.TERNARY)],
        requires="ipv4.dst",
    )
    # Stage 4f: chosen backend -> egress cable.  ``meta.lb_backend`` is
    # only written by a vip_steer hit, so this stage is skipped for all
    # other traffic (requires gating is live per stage).
    program.add_table(
        "lb_egress",
        [MatchKey("meta.lb_backend")],
        requires="meta.lb_backend",
    )
    # Stage 5: per-tenant slack (scheduler programming, section 3.1.3).
    program.add_table(
        "tenant_slack",
        [MatchKey("kv.tenant")],
        requires="kv.tenant",
    )
    # Stage 5b: slack for non-KV traffic, keyed on DSCP.
    # Misses in both slack tables leave the deadline unset; the decision
    # handler applies DEFAULT_SLACK_PS, so per-tenant entries are never
    # clobbered by a later stage's default action.
    program.add_table(
        "dscp_slack",
        [MatchKey("ipv4.dscp")],
        requires="ipv4.dscp",
    )
    # Stage 5c: slack keyed on the rack flow tag (same miss semantics).
    program.add_table(
        "tag_slack",
        [MatchKey("rack.tag")],
        requires="rack.tag",
    )
    # Stage 6: receive-queue steering (flow-stable hash).
    rx_steer = program.add_table(
        "rx_steer",
        [MatchKey("meta.direction")],
        requires="udp.src_port",
    )
    rx_steer.add(
        [DIR_RX],
        "hash_select",
        {
            "fields": ["ipv4.src", "udp.src_port"],
            "ways": rx_queues,
            "dst": "meta.rx_queue",
        },
    )
    # Stage 7: egress port selection for TX packets that know their port.
    egress_select = program.add_table(
        "egress_select",
        [MatchKey("meta.direction"), MatchKey("meta.egress_port")],
        requires="meta.egress_port",
    )
    for index, addr in enumerate(port_addrs):
        egress_select.add([DIR_TX, index], "set_chain_if_empty", {"chain": [addr]})
    # Stage 8: defaults -- RX ends at the DMA engine, TX at its port.
    default_route = program.add_table(
        "default_route",
        [MatchKey("meta.direction")],
    )
    default_route.add([DIR_RX], "set_chain_if_empty", {"chain": [dma_addr]})
    default_route.add(
        [DIR_TX], "set_chain_if_empty", {"chain": [port_addrs[0]]}
    )
    return program


class PanicControl:
    """Intent-level control plane over the reference program's tables.

    Engine addresses come from the NIC's placement; users call these
    methods with engine *names* and the control plane resolves them.
    """

    def __init__(self, program: RmtProgram, addr_of: Dict[str, int], dma_addr: int, port_addrs: Sequence[int]):
        self.program = program
        self._addr_of = dict(addr_of)
        self._dma_addr = dma_addr
        self._port_addrs = list(port_addrs)

    def addr(self, engine_name: str) -> int:
        try:
            return self._addr_of[engine_name]
        except KeyError:
            raise KeyError(
                f"unknown engine {engine_name!r}; have {sorted(self._addr_of)}"
            ) from None

    def port_addr(self, port: int) -> int:
        """NoC address of Ethernet port ``port`` (chain targets for
        forwarding decisions like the load balancer's backend cables)."""
        return self._port_addrs[port]

    def resolve_chain(self, chain: Sequence) -> List[int]:
        """Accept engine names or raw addresses."""
        return [
            hop if isinstance(hop, int) else self.addr(hop) for hop in chain
        ]

    # -- IPSec ----------------------------------------------------------

    def enable_ipsec_rx(self) -> None:
        """Decrypt inbound ESP before anything else (two-pass flow)."""
        ipsec = self.addr("ipsec")
        self.program.table("ipsec_rx").add(
            [DIR_RX, IP_PROTO_ESP], "set_chain", {"chain": [ipsec]}
        )

    def encrypt_subnet(self, prefix: int, prefix_len: int, spi: int, port: int = 0) -> None:
        """ESP-encrypt TX packets whose destination matches the prefix."""
        ipsec = self.addr("ipsec")
        self.program.table("ipsec_tx").add(
            [DIR_TX, (prefix, prefix_len)],
            "encrypt_via",
            {"spi": spi, "chain": [ipsec, self._port_addrs[port]]},
            priority=prefix_len,
        )

    # -- KV fast path ----------------------------------------------------

    def route_kv_opcode(self, opcode: KvOpcode, chain: Sequence, append_dma: bool = True) -> None:
        """Send a KV opcode through ``chain`` (names or addresses)."""
        hops = self.resolve_chain(chain)
        if append_dma:
            hops = hops + [self._dma_addr]
        self.program.table("kv_route").add(
            [DIR_RX, int(opcode)], "set_chain", {"chain": hops}
        )

    def enable_kv_cache(self) -> None:
        """GET/SET/DELETE flow through the on-NIC cache (section 3.2)."""
        self.route_kv_opcode(KvOpcode.GET, ["kvcache"])
        self.route_kv_opcode(KvOpcode.SET, ["kvcache"])
        self.route_kv_opcode(KvOpcode.DELETE, ["kvcache"])

    # -- Tenant policy ----------------------------------------------------

    def route_tenant(self, tenant: int, chain: Sequence, append_dma: bool = True) -> None:
        hops = self.resolve_chain(chain)
        if append_dma:
            hops = hops + [self._dma_addr]
        self.program.table("tenant_route").add(
            [DIR_RX, tenant], "set_chain", {"chain": hops}
        )

    def route_dscp(self, dscp: int, chain: Sequence, append_dma: bool = True) -> None:
        """Send RX traffic of a DSCP class through ``chain``."""
        hops = self.resolve_chain(chain)
        if append_dma:
            hops = hops + [self._dma_addr]
        self.program.table("dscp_route").add(
            [DIR_RX, dscp], "set_chain", {"chain": hops}
        )

    def route_dscp_tx(self, dscp: int, chain: Sequence = (),
                      egress_port: int = 0) -> None:
        """Send TX traffic of a DSCP class through ``chain`` and out
        ``egress_port``.  The default TX route always picks port 0, so
        multi-port NICs (rack fabrics cabling one port per peer) classify
        egress traffic by DSCP to pick the cable."""
        hops = self.resolve_chain(chain) + [self._port_addrs[egress_port]]
        self.program.table("dscp_route").add(
            [DIR_TX, dscp], "set_chain", {"chain": hops}
        )

    def route_tag(self, tag: int, chain: Sequence,
                  append_dma: bool = True) -> None:
        """Send RX traffic of a rack flow tag through ``chain``.  The
        tag-keyed twin of :meth:`route_dscp`, for racks too large for the
        6-bit DSCP flow encoding."""
        hops = self.resolve_chain(chain)
        if append_dma:
            hops = hops + [self._dma_addr]
        self.program.table("tag_route").add(
            [DIR_RX, tag], "set_chain", {"chain": hops}
        )

    def route_tag_tx(self, tag: int, chain: Sequence = (),
                     egress_port: int = 0) -> None:
        """Send TX traffic of a rack flow tag through ``chain`` and out
        ``egress_port``; the tag-keyed twin of :meth:`route_dscp_tx`."""
        hops = self.resolve_chain(chain) + [self._port_addrs[egress_port]]
        self.program.table("tag_route").add(
            [DIR_TX, tag], "set_chain", {"chain": hops}
        )

    def route_udp_port(self, dst_port: int, chain: Sequence,
                       append_dma: bool = True) -> None:
        """Send RX traffic for a UDP destination port through ``chain``
        (e.g. steer CNP congestion notifications to the DCQCN engine)."""
        hops = self.resolve_chain(chain)
        if append_dma:
            hops = hops + [self._dma_addr]
        self.program.table("port_route").add(
            [DIR_RX, dst_port], "set_chain", {"chain": hops}
        )

    def route_tenant_tx(self, tenant: int, chain: Sequence,
                        egress_port: int = 0) -> None:
        """Send a tenant's *transmit* traffic through ``chain`` before it
        leaves on ``egress_port`` (e.g. a rate limiter)."""
        hops = self.resolve_chain(chain) + [self._port_addrs[egress_port]]
        self.program.table("tenant_route").add(
            [DIR_TX, tenant], "set_chain", {"chain": hops}
        )

    def set_tenant_slack(self, tenant: int, slack_ps: int) -> None:
        """Program the logical scheduler's deadline for a tenant."""
        self.program.table("tenant_slack").add(
            [tenant], "set_slack", {"slack_ps": slack_ps}
        )

    def set_dscp_slack(self, dscp: int, slack_ps: int) -> None:
        self.program.table("dscp_slack").add(
            [dscp], "set_slack", {"slack_ps": slack_ps}
        )

    def set_tag_slack(self, tag: int, slack_ps: int) -> None:
        """Program the scheduler's deadline for a rack flow tag."""
        self.program.table("tag_slack").add(
            [tag], "set_slack", {"slack_ps": slack_ps}
        )

    def enable_wfq(self, weights: Dict[int, float],
                   cost_ps: int = 1000) -> None:
        """Weighted fair sharing across tenants, live in the pipeline.

        Installs a stateful action backed by
        :class:`~repro.sched.slack.WeightedShareSlackPolicy`: each
        tenant's messages are stamped with virtual-finish-time deadlines,
        so every engine's PIFO serves backlogged tenants in proportion to
        their weights (section 3.1.3's "share on-NIC resources according
        to some high-level policy", realized via Universal Packet
        Scheduling's slack construction).
        """
        from repro.sched.slack import WeightedShareSlackPolicy

        policy = WeightedShareSlackPolicy(weights)

        def wfq_slack(phv: Phv, ctx: ActionContext, *, tenant: int) -> None:
            deadline = policy.deadline_ps(tenant, ctx.now_ps, cost_ps=cost_ps)
            phv.set("meta.slack_deadline_ps", deadline)

        if "wfq_slack" not in self.program.actions:
            self.program.add_action("wfq_slack", wfq_slack)
        table = self.program.table("tenant_slack")
        for tenant in weights:
            table.add([tenant], "wfq_slack", {"tenant": tenant})

    def mark_dscp_droppable(self, dscp: int, slack_ps: int = 1_000_000 * US) -> None:
        """Classify a DSCP as lossy attack-class traffic: worst slack and
        the droppable flag, so bounded queues shed it first."""
        self.program.table("dscp_slack").add(
            [dscp], "police", {"slack_ps": slack_ps}
        )

    # -- Failover ---------------------------------------------------------

    def remap_engine(self, old_addr: int, new_addr: Optional[int]) -> int:
        """Rewrite every installed chain that routes through ``old_addr``.

        The failover path (section on fault tolerance in DESIGN.md): when
        an engine dies, the control plane recomputes offload chains around
        it by substituting the backup's address, or -- with
        ``new_addr=None`` -- removing the hop entirely so traffic skips
        the lost function instead of black-holing.  Returns the number of
        rewritten table entries.
        """
        changed = 0
        for stage in self.program.stages:
            for entry in stage.table.entries():
                chain = entry.params.get("chain")
                if not chain or old_addr not in chain:
                    continue
                if new_addr is None:
                    entry.params["chain"] = [a for a in chain if a != old_addr]
                else:
                    entry.params["chain"] = [
                        new_addr if a == old_addr else a for a in chain
                    ]
                changed += 1
        return changed


def panic_decision_factory(nic):
    """Build the decision handler that turns PHVs into chain headers.

    Installed on the RMT engine by :class:`repro.core.panic.PanicNic`;
    split out so baselines can install different handlers on the same
    engine type.
    """
    from repro.packet.builder import frame_checksums_ok
    from repro.packet.headers import HeaderError
    from repro.packet.packet import MessageKind
    from repro.packet.panic_hdr import PanicHeader

    # Decoded (and header-validated) chains by wire blob: route tables
    # emit the same ``meta.chain`` bytes for every frame of a flow, so
    # decode + validation runs once per distinct blob.  Bounded by
    # wholesale clearing, like the parse memo.
    chain_cache: dict = {}

    def decide(packet, phv):
        if packet.panic is not None and not packet.panic.exhausted:
            # Mid-chain revisit: the chain explicitly routed *through*
            # the heavyweight pipeline (section 3.1.2's "the RMT pipeline
            # includes itself as a nexthop in the chain"); continue the
            # existing chain rather than reclassifying from scratch.
            return [(packet, None)]
        if (
            nic.config.verify_checksums
            and packet.kind is MessageKind.ETHERNET
            and not frame_checksums_ok(packet.data)
        ):
            # Link corruption detected at the classification point: drop
            # with accounting instead of steering a mangled frame.
            nic.corrupt_drops.add()
            return []
        # Direct field-store reads: _fields never holds an invalid
        # sentinel (invalidate() pops), so dict.get with a default is
        # exactly get_or/is_valid without the method-call tax on this
        # per-frame path.
        fields = phv._fields
        if fields.get("meta.drop", 0):
            nic.rmt_drops.add()
            return []
        blob = fields.get("meta.chain", b"")
        deadline = int(
            fields.get("meta.slack_deadline_ps",
                       nic.sim.now + DEFAULT_SLACK_PS)
        )
        needs_rmt = bool(fields.get("meta.needs_rmt", 0))
        droppable = bool(fields.get("meta.droppable", 0))
        chain = chain_cache.get(blob)
        if chain is None:
            # First sighting of this chain blob: the validating
            # constructor runs (decode errors and chain-length errors
            # surface exactly as before), then the decoded tuple is
            # cached for every later frame of the flow.
            header = PanicHeader(
                chain=decode_chain(blob),
                slack_ps=deadline,
                needs_rmt=needs_rmt,
                droppable=droppable,
            )
            if len(chain_cache) >= 512:
                chain_cache.clear()
            chain_cache[blob] = tuple(header.chain)
        else:
            # Chain entries were validated at cache-fill; the only
            # per-frame validation left is the slack sign check.
            if deadline < 0:
                raise HeaderError(f"negative slack: {deadline}")
            header = object.__new__(PanicHeader)
            header.chain = list(chain)
            header.cursor = 0
            header.slack_ps = deadline
            header.needs_rmt = needs_rmt
            header.droppable = droppable
        packet.panic = header
        annotations = packet.meta.annotations
        value = fields.get("meta.rx_queue")
        if value is not None:
            annotations["rx_queue"] = int(value)
        value = fields.get("meta.ipsec_spi")
        if value is not None:
            annotations["ipsec_spi"] = int(value)
        value = fields.get("kv.tenant")
        if value is None:
            value = fields.get("meta.tenant")
        if value is not None:
            packet.meta.tenant = int(value)
        return [(packet, None)]

    return decide
