"""Offload engines: the self-contained tiles of the PANIC architecture.

Everything on the PANIC mesh is an engine (Figure 3): the offloads (IPSec,
compression, KV cache, RDMA, DPI, checksum), the heavyweight RMT pipeline
tiles, and the components a conventional NIC would hide in fixed logic --
Ethernet MACs, the DMA engine, the PCIe engine.

All engines share :class:`~repro.engines.base.Engine`: a PIFO scheduling
queue ranked by RMT-computed slack, a lightweight lookup table for routing
chain-exhausted messages, a NoC port, and a cost model expressed in engine
cycles.
"""

from repro.engines.base import Engine, EngineOutput, LocalLookupTable, LOOKUP_CYCLES
from repro.engines.checksum_engine import ChecksumEngine
from repro.engines.compression import (
    CompressionEngine,
    CompressionError,
    compress,
    decompress,
)
from repro.engines.dcqcn import (
    CnpResponder,
    DcqcnEngine,
    DcqcnRateController,
    EcnMarkerEngine,
    build_cnp,
    parse_cnp,
)
from repro.engines.dma import DmaEngine
from repro.engines.ethernet import EthernetPort
from repro.engines.ipsec import IpsecEngine, IpsecError, IpsecSa, keystream, xor_bytes
from repro.engines.kvcache import KvCacheEngine
from repro.engines.pcie import PcieEngine
from repro.engines.ratelimit import RateLimiterEngine, TokenBucket
from repro.engines.rdma import RdmaEngine
from repro.engines.regex_engine import AhoCorasick, RegexEngine
from repro.engines.rmt_engine import RmtPipelineEngine
from repro.engines.taxonomy import (
    Beneficiary,
    ENGINE_CLASSES,
    OffloadClass,
    Placement,
    Resource,
    TABLE1,
    coverage,
    table1_rows,
)

__all__ = [
    "AhoCorasick",
    "Beneficiary",
    "ChecksumEngine",
    "CompressionEngine",
    "CompressionError",
    "CnpResponder",
    "DcqcnEngine",
    "DcqcnRateController",
    "EcnMarkerEngine",
    "DmaEngine",
    "ENGINE_CLASSES",
    "Engine",
    "EngineOutput",
    "EthernetPort",
    "IpsecEngine",
    "IpsecError",
    "IpsecSa",
    "KvCacheEngine",
    "LOOKUP_CYCLES",
    "LocalLookupTable",
    "OffloadClass",
    "PcieEngine",
    "Placement",
    "RateLimiterEngine",
    "RdmaEngine",
    "RegexEngine",
    "Resource",
    "RmtPipelineEngine",
    "TABLE1",
    "TokenBucket",
    "build_cnp",
    "compress",
    "coverage",
    "decompress",
    "keystream",
    "parse_cnp",
    "xor_bytes",
    "table1_rows",
]
