"""The offload taxonomy of section 2.1 (reproduces Table 1).

The paper classifies NIC offloads along three axes -- infrastructure vs
application, CPU-bypass vs inline, computation vs memory vs network --
and catalogues prior systems in Table 1.  This module encodes the same
taxonomy as data, used by the Table 1 bench and by engine metadata.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple


class Beneficiary(enum.Enum):
    """Who the offload serves (first taxonomy axis)."""

    APPLICATION = "Application"
    INFRASTRUCTURE = "Infrastructure"


class Placement(enum.Enum):
    """How the offload intercepts work (second axis)."""

    INLINE = "Inline"
    CPU_BYPASS = "CPU-bypass"


class Resource(enum.Enum):
    """What resource the offload touches (third axis)."""

    COMPUTATION = "Computation"
    MEMORY = "Memory"
    NETWORK = "Network"


@dataclass(frozen=True)
class OffloadClass:
    """One classified offload (a row fragment of Table 1)."""

    project: str
    beneficiary: Beneficiary
    placement: Placement
    resource: Resource

    def describe(self) -> str:
        return (
            f"{self.beneficiary.value} {self.placement.value} "
            f"{self.resource.value}"
        )


#: The rows of Table 1, transcribed from the paper.
TABLE1: Tuple[OffloadClass, ...] = (
    OffloadClass("FlexNIC", Beneficiary.APPLICATION, Placement.INLINE, Resource.COMPUTATION),
    OffloadClass("Emu", Beneficiary.APPLICATION, Placement.CPU_BYPASS, Resource.MEMORY),
    OffloadClass("Emu", Beneficiary.INFRASTRUCTURE, Placement.CPU_BYPASS, Resource.NETWORK),
    OffloadClass("SENIC", Beneficiary.INFRASTRUCTURE, Placement.INLINE, Resource.NETWORK),
    OffloadClass("sNICh", Beneficiary.INFRASTRUCTURE, Placement.CPU_BYPASS, Resource.NETWORK),
    OffloadClass("DCQCN", Beneficiary.INFRASTRUCTURE, Placement.CPU_BYPASS, Resource.NETWORK),
    OffloadClass("TCP Offload Engines", Beneficiary.INFRASTRUCTURE, Placement.CPU_BYPASS, Resource.NETWORK),
    OffloadClass("Uno", Beneficiary.INFRASTRUCTURE, Placement.CPU_BYPASS, Resource.NETWORK),
    OffloadClass("Azure SmartNIC", Beneficiary.INFRASTRUCTURE, Placement.CPU_BYPASS, Resource.NETWORK),
    OffloadClass("RDMA", Beneficiary.APPLICATION, Placement.INLINE, Resource.NETWORK),
    OffloadClass("RDMA", Beneficiary.APPLICATION, Placement.CPU_BYPASS, Resource.MEMORY),
)

#: Which taxonomy class each of this library's engines implements --
#: evidence for the paper's claim that PANIC "supports arbitrary types of
#: offloads": every cell of the taxonomy is exercised by some engine.
ENGINE_CLASSES = {
    "IpsecEngine": OffloadClass(
        "repro.engines.ipsec", Beneficiary.INFRASTRUCTURE, Placement.INLINE, Resource.COMPUTATION
    ),
    "CompressionEngine": OffloadClass(
        "repro.engines.compression", Beneficiary.APPLICATION, Placement.INLINE, Resource.COMPUTATION
    ),
    "KvCacheEngine": OffloadClass(
        "repro.engines.kvcache", Beneficiary.APPLICATION, Placement.CPU_BYPASS, Resource.MEMORY
    ),
    "RdmaEngine": OffloadClass(
        "repro.engines.rdma", Beneficiary.APPLICATION, Placement.CPU_BYPASS, Resource.MEMORY
    ),
    "ChecksumEngine": OffloadClass(
        "repro.engines.checksum", Beneficiary.INFRASTRUCTURE, Placement.INLINE, Resource.NETWORK
    ),
    "RegexEngine": OffloadClass(
        "repro.engines.regex", Beneficiary.INFRASTRUCTURE, Placement.INLINE, Resource.COMPUTATION
    ),
    "DmaEngine": OffloadClass(
        "repro.engines.dma", Beneficiary.INFRASTRUCTURE, Placement.CPU_BYPASS, Resource.MEMORY
    ),
    "EthernetPort": OffloadClass(
        "repro.engines.ethernet", Beneficiary.INFRASTRUCTURE, Placement.INLINE, Resource.NETWORK
    ),
    "RateLimiterEngine": OffloadClass(
        "repro.engines.ratelimit", Beneficiary.INFRASTRUCTURE, Placement.INLINE, Resource.NETWORK
    ),
}


def table1_rows() -> List[Tuple[str, str]]:
    """Render Table 1 as (project, classification) rows."""
    return [(row.project, row.describe()) for row in TABLE1]


def coverage() -> List[Tuple[str, str]]:
    """Which taxonomy cells this library's engines cover."""
    return [
        (engine, cls.describe()) for engine, cls in sorted(ENGINE_CLASSES.items())
    ]
