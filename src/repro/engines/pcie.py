"""The PCIe engine: doorbells in, interrupts out.

Section 3.2: "After the DMA has completed, the DMA engine will send a
message to a PCIe engine that may generate an interrupt depending on the
interrupt coalescing state."  This engine implements that coalescing --
an interrupt fires when ``coalesce_count`` completions have accumulated
or ``coalesce_timeout_ps`` has elapsed since the first pending one --
and it is also the entry point for host doorbells (TX kicks).
"""

from __future__ import annotations

from typing import List, Optional

from repro.engines.base import Engine, EngineOutput
from repro.packet.packet import Direction, MessageKind, Packet
from repro.sim.clock import MHZ, US
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter


class PcieEngine(Engine):
    """Interrupt generation with coalescing, plus host doorbell injection."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        coalesce_count: int = 8,
        coalesce_timeout_ps: int = 10 * US,
        interrupt_cost_cycles: int = 8,
        freq_hz: float = 500 * MHZ,
    ):
        super().__init__(sim, name, freq_hz=freq_hz)
        if coalesce_count < 1:
            raise ValueError(f"{name}: coalesce_count must be >= 1")
        if coalesce_timeout_ps <= 0:
            raise ValueError(f"{name}: coalesce timeout must be positive")
        self.coalesce_count = coalesce_count
        self.coalesce_timeout_ps = coalesce_timeout_ps
        self.interrupt_cost_cycles = interrupt_cost_cycles
        self.host = None
        #: The DMA engine's address, for forwarding doorbells.
        self.dma_addr: Optional[int] = None
        self._pending_completions = 0
        self._timeout_event = None
        self.interrupts = Counter(f"{name}.interrupts")
        self.completions = Counter(f"{name}.completions")
        self.doorbells = Counter(f"{name}.doorbells")

    def attach_host(self, host) -> None:
        self.host = host

    # ------------------------------------------------------------------
    # Host-side interface
    # ------------------------------------------------------------------

    def ring_doorbell(self, tx_queue: int = 0) -> None:
        """Host writes a doorbell register: inject a TX kick to the DMA
        engine through the same unified network as everything else."""
        if self.dma_addr is None:
            raise RuntimeError(f"{self.name}: no DMA engine address configured")
        self.doorbells.add()
        doorbell = Packet(b"", MessageKind.DOORBELL)
        doorbell.meta.direction = Direction.INTERNAL
        doorbell.meta.annotations["tx_queue"] = tx_queue
        self.send(doorbell, self.dma_addr)

    # ------------------------------------------------------------------
    # Engine behaviour
    # ------------------------------------------------------------------

    def service_time_ps(self, packet: Packet) -> int:
        return self.clock.cycles_to_ps(self.interrupt_cost_cycles)

    def handle(self, packet: Packet) -> List[EngineOutput]:
        if packet.kind == MessageKind.DMA_COMPLETION:
            self._on_completion()
            return []
        # Unknown messages follow their chain (e.g. control traffic).
        return [(packet, None)]

    def _on_completion(self) -> None:
        self.completions.add()
        self._pending_completions += 1
        if self._pending_completions >= self.coalesce_count:
            self._fire_interrupt()
        elif self._timeout_event is None:
            self._timeout_event = self.schedule(
                self.coalesce_timeout_ps, self._on_timeout
            )

    def _on_timeout(self) -> None:
        self._timeout_event = None
        if self._pending_completions > 0:
            self._fire_interrupt()

    def _fire_interrupt(self) -> None:
        count = self._pending_completions
        self._pending_completions = 0
        if self._timeout_event is not None:
            self._timeout_event.cancel()
            self._timeout_event = None
        self.interrupts.add()
        if self.host is not None:
            self.host.interrupt(count)

    @property
    def pending_completions(self) -> int:
        return self._pending_completions
