"""The checksum offload engine (verify on RX, fill in on TX).

The classic fixed-function offload (the paper cites Intel NICs using
bump-in-the-wire pipelines "for TCP checksums and IPSec").  As a PANIC
engine it verifies IPv4 + UDP checksums on receive, annotating validity,
and recomputes them on transmit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engines.base import Engine, EngineOutput
from repro.packet.builder import build_udp_frame
from repro.packet.checksum import internet_checksum, verify_internet_checksum
from repro.packet.vectorized import rx_verdicts_many
from repro.packet.headers import (
    EthernetHeader,
    HeaderError,
    IP_PROTO_UDP,
    Ipv4Header,
    UdpHeader,
)
from repro.packet.packet import Direction, Packet
from repro.sim.clock import MHZ
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter


#: Memo of RX verification verdicts by frame bytes: ``None`` when the
#: frame has no parseable Ethernet/IPv4 layer, else whether the IPv4 (and
#: any non-zero UDP) checksum verified.  The verdict is a pure function of
#: the bytes, and chained checksum engines verify the same frame
#: repeatedly.  Bounded by wholesale clearing, like the parse memo.
_RX_VERDICT_MEMO: dict = {}
_RX_VERDICT_MAX = 256
_MISSING = object()


def _rx_verdict(data: bytes):
    verdict = _RX_VERDICT_MEMO.get(data, _MISSING)
    if verdict is not _MISSING:
        return verdict
    # Fixed-offset reads replacing EthernetHeader/Ipv4Header/UdpHeader
    # unpacks: each validation those would apply is replicated below
    # (truncation, IPv4 version/IHL/total_length, UDP length), so the
    # verdict -- including the None "unparseable" cases -- is identical
    # without building header or address objects.
    if len(data) < 34 or data[14] != 0x45:
        verdict = None
    else:
        rest = data[14:]
        total_length = (rest[2] << 8) | rest[3]
        if total_length < Ipv4Header.LENGTH:
            verdict = None
        else:
            ok = verify_internet_checksum(rest[:20])
            if ok and rest[9] == IP_PROTO_UDP:
                after_ip = rest[20:]
                if len(after_ip) < 8:
                    ok = False
                else:
                    udp_length = (after_ip[4] << 8) | after_ip[5]
                    if udp_length < UdpHeader.LENGTH:
                        ok = False
                    elif after_ip[6] or after_ip[7]:  # checksum != 0
                        # Ipv4Header.pseudo_header: src + dst + zero,
                        # proto (UDP here), L4 length (bytes 4:6).
                        pseudo = (rest[12:20] + b"\x00\x11"
                                  + after_ip[4:6])
                        ok = verify_internet_checksum(
                            pseudo + after_ip[:udp_length])
            verdict = ok
    if len(_RX_VERDICT_MEMO) >= _RX_VERDICT_MAX:
        _RX_VERDICT_MEMO.clear()
    _RX_VERDICT_MEMO[bytes(data)] = verdict
    return verdict


class ChecksumEngine(Engine):
    """Verify (RX) or regenerate (TX) IPv4/UDP checksums."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        fixed_cycles: int = 8,
        cycles_per_byte: float = 0.0625,  # 16 bytes per cycle
        freq_hz: float = 500 * MHZ,
        queue_capacity: Optional[int] = None,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz,
                         queue_capacity=queue_capacity, **engine_kwargs)
        self.fixed_cycles = fixed_cycles
        self.cycles_per_byte = cycles_per_byte
        self.verified = Counter(f"{name}.verified")
        self.bad_checksums = Counter(f"{name}.bad")
        self.generated = Counter(f"{name}.generated")

    def service_time_ps(self, packet: Packet) -> int:
        cycles = self.fixed_cycles + self.cycles_per_byte * packet.frame_bytes
        return self.clock.cycles_to_ps(cycles)

    def handle(self, packet: Packet) -> List[EngineOutput]:
        if packet.meta.direction == Direction.TX:
            try:
                eth, rest = EthernetHeader.unpack(packet.data)
                ipv4, after_ip = Ipv4Header.unpack(rest)
            except HeaderError:
                return [(packet, None)]
            return [(self._regenerate(packet, eth, ipv4, after_ip), None)]
        return [(self._verify(packet), None)]

    def service_many(self, packets):
        """Batched RX verification for the frame-train lane.

        Vectorizes the checksum folds over the batch's distinct frames
        (:func:`repro.packet.vectorized.rx_verdicts_many`), then replays
        the scalar path's per-packet effects in order: the
        ``_RX_VERDICT_MEMO`` get/insert/clear sequence, the ``csum_ok``
        annotation, and the verified/bad counters.  TX frames decline the
        whole batch (regeneration allocates new packets; it stays
        scalar), before any mutation, per the ``service_many`` contract.
        """
        for packet in packets:
            if packet.meta.direction == Direction.TX:
                return None
        # Verdicts for every distinct frame: memo hits read out, misses
        # computed vectorized.  A mid-batch memo clear (replayed below)
        # can turn a hit back into a miss, but the verdict is a pure
        # function of the bytes, so the precomputed value still matches
        # what the scalar path would recompute.
        known: dict = {}
        misses = []
        for packet in packets:
            data = packet.data
            if data in known:
                continue
            verdict = _RX_VERDICT_MEMO.get(data, _MISSING)
            if verdict is _MISSING:
                misses.append(data)
            known[data] = verdict
        if misses:
            for data, verdict in zip(misses, rx_verdicts_many(misses)):
                known[data] = verdict
        outs = []
        for packet in packets:
            data = packet.data
            verdict = _RX_VERDICT_MEMO.get(data, _MISSING)
            if verdict is _MISSING:
                verdict = known[data]
                if len(_RX_VERDICT_MEMO) >= _RX_VERDICT_MAX:
                    _RX_VERDICT_MEMO.clear()
                _RX_VERDICT_MEMO[bytes(data)] = verdict
            if verdict is not None:
                packet.meta.annotations["csum_ok"] = verdict
                if verdict:
                    self.verified.value += 1
                else:
                    self.bad_checksums.value += 1
            outs.append([(packet, None)])
        return outs

    def _verify(self, packet: Packet) -> Packet:
        ok = _rx_verdict(packet.data)
        if ok is None:
            # Unparseable: nothing to verify, pass through unannotated.
            return packet
        packet.meta.annotations["csum_ok"] = ok
        if ok:
            self.verified.value += 1
        else:
            self.bad_checksums.value += 1
        return packet

    def _regenerate(self, packet: Packet, eth: EthernetHeader, ipv4: Ipv4Header, after_ip: bytes) -> Packet:
        if ipv4.protocol != IP_PROTO_UDP:
            # IPv4 header checksum is recomputed by Ipv4Header.pack().
            frame = eth.pack() + ipv4.pack() + after_ip
            out = Packet(frame, packet.kind, packet.meta)
            out.panic = packet.panic
            self.generated.add()
            return out
        try:
            udp, _rest = UdpHeader.unpack(after_ip)
        except HeaderError:
            return packet
        payload = after_ip[UdpHeader.LENGTH : udp.length]
        frame = build_udp_frame(
            src_mac=eth.src,
            dst_mac=eth.dst,
            src_ip=ipv4.src,
            dst_ip=ipv4.dst,
            src_port=udp.src_port,
            dst_port=udp.dst_port,
            payload=payload,
            dscp=ipv4.dscp,
            ttl=ipv4.ttl,
            identification=ipv4.identification,
        )
        out = Packet(frame, packet.kind, packet.meta)
        out.panic = packet.panic
        out.meta.annotations["csum_generated"] = True
        self.generated.add()
        return out
