"""The checksum offload engine (verify on RX, fill in on TX).

The classic fixed-function offload (the paper cites Intel NICs using
bump-in-the-wire pipelines "for TCP checksums and IPSec").  As a PANIC
engine it verifies IPv4 + UDP checksums on receive, annotating validity,
and recomputes them on transmit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.engines.base import Engine, EngineOutput
from repro.packet.builder import build_udp_frame
from repro.packet.checksum import internet_checksum, verify_internet_checksum
from repro.packet.headers import (
    EthernetHeader,
    HeaderError,
    IP_PROTO_UDP,
    Ipv4Header,
    UdpHeader,
)
from repro.packet.packet import Direction, Packet
from repro.sim.clock import MHZ
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter


#: Memo of RX verification verdicts by frame bytes: ``None`` when the
#: frame has no parseable Ethernet/IPv4 layer, else whether the IPv4 (and
#: any non-zero UDP) checksum verified.  The verdict is a pure function of
#: the bytes, and chained checksum engines verify the same frame
#: repeatedly.  Bounded by wholesale clearing, like the parse memo.
_RX_VERDICT_MEMO: dict = {}
_RX_VERDICT_MAX = 256
_MISSING = object()


def _rx_verdict(data: bytes):
    verdict = _RX_VERDICT_MEMO.get(data, _MISSING)
    if verdict is not _MISSING:
        return verdict
    try:
        _eth, rest = EthernetHeader.unpack(data)
        ip_bytes = rest[: Ipv4Header.LENGTH]
        ipv4, after_ip = Ipv4Header.unpack(rest)
    except HeaderError:
        verdict = None
    else:
        ok = verify_internet_checksum(ip_bytes)
        if ok and ipv4.protocol == IP_PROTO_UDP:
            try:
                udp, _payload = UdpHeader.unpack(after_ip)
            except HeaderError:
                ok = False
            else:
                if udp.checksum != 0:
                    datagram = after_ip[: udp.length]
                    pseudo = ipv4.pseudo_header(udp.length)
                    ok = verify_internet_checksum(pseudo + datagram)
        verdict = ok
    if len(_RX_VERDICT_MEMO) >= _RX_VERDICT_MAX:
        _RX_VERDICT_MEMO.clear()
    _RX_VERDICT_MEMO[bytes(data)] = verdict
    return verdict


class ChecksumEngine(Engine):
    """Verify (RX) or regenerate (TX) IPv4/UDP checksums."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        fixed_cycles: int = 8,
        cycles_per_byte: float = 0.0625,  # 16 bytes per cycle
        freq_hz: float = 500 * MHZ,
        queue_capacity: Optional[int] = None,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz,
                         queue_capacity=queue_capacity, **engine_kwargs)
        self.fixed_cycles = fixed_cycles
        self.cycles_per_byte = cycles_per_byte
        self.verified = Counter(f"{name}.verified")
        self.bad_checksums = Counter(f"{name}.bad")
        self.generated = Counter(f"{name}.generated")

    def service_time_ps(self, packet: Packet) -> int:
        cycles = self.fixed_cycles + self.cycles_per_byte * packet.frame_bytes
        return self.clock.cycles_to_ps(cycles)

    def handle(self, packet: Packet) -> List[EngineOutput]:
        if packet.meta.direction == Direction.TX:
            try:
                eth, rest = EthernetHeader.unpack(packet.data)
                ipv4, after_ip = Ipv4Header.unpack(rest)
            except HeaderError:
                return [(packet, None)]
            return [(self._regenerate(packet, eth, ipv4, after_ip), None)]
        return [(self._verify(packet), None)]

    def _verify(self, packet: Packet) -> Packet:
        ok = _rx_verdict(packet.data)
        if ok is None:
            # Unparseable: nothing to verify, pass through unannotated.
            return packet
        packet.meta.annotations["csum_ok"] = ok
        if ok:
            self.verified.value += 1
        else:
            self.bad_checksums.value += 1
        return packet

    def _regenerate(self, packet: Packet, eth: EthernetHeader, ipv4: Ipv4Header, after_ip: bytes) -> Packet:
        if ipv4.protocol != IP_PROTO_UDP:
            # IPv4 header checksum is recomputed by Ipv4Header.pack().
            frame = eth.pack() + ipv4.pack() + after_ip
            out = Packet(frame, packet.kind, packet.meta)
            out.panic = packet.panic
            self.generated.add()
            return out
        try:
            udp, _rest = UdpHeader.unpack(after_ip)
        except HeaderError:
            return packet
        payload = after_ip[UdpHeader.LENGTH : udp.length]
        frame = build_udp_frame(
            src_mac=eth.src,
            dst_mac=eth.dst,
            src_ip=ipv4.src,
            dst_ip=ipv4.dst,
            src_port=udp.src_port,
            dst_port=udp.dst_port,
            payload=payload,
            dscp=ipv4.dscp,
            ttl=ipv4.ttl,
            identification=ipv4.identification,
        )
        out = Packet(frame, packet.kind, packet.meta)
        out.panic = packet.panic
        out.meta.annotations["csum_generated"] = True
        self.generated.add()
        return out
