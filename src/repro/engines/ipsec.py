"""The IPSec (ESP) offload engine.

The paper's canonical example of an offload that *cannot* live in an RMT
pipeline (section 2.3.3: "it is not possible to perform IPSec offloading
with an RMT pipeline") because it must touch every payload byte and take
variable time.  Here it is a self-contained engine: real ESP tunnel-mode
encapsulation with an XOR keystream cipher (SHA-256 counter mode) and a
CRC-32 integrity check, plus a per-byte timing model.

The cipher is intentionally *not* cryptographically serious -- the point
is byte-accurate, verifiable transformation with realistic costs, not
security.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.engines.base import Engine, EngineOutput
from repro.packet.addresses import IPv4Address
from repro.packet.checksum import crc32
from repro.packet.headers import (
    ETHERTYPE_IPV4,
    IP_PROTO_ESP,
    EspHeader,
    EthernetHeader,
    HeaderError,
    Ipv4Header,
)
from repro.packet.packet import Packet
from repro.sim.clock import MHZ
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter

#: Bytes of CRC-32 integrity check value appended to the ESP payload.
ICV_BYTES = 4


class IpsecError(RuntimeError):
    """Raised on authentication failures or unknown SPIs."""


@dataclass
class IpsecSa:
    """A security association: SPI, key, tunnel endpoints."""

    spi: int
    key: bytes
    tunnel_src: IPv4Address
    tunnel_dst: IPv4Address
    next_seq: int = 1

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError(f"SA {self.spi:#x} needs a non-empty key")
        self.tunnel_src = IPv4Address(self.tunnel_src)
        self.tunnel_dst = IPv4Address(self.tunnel_dst)


def keystream(key: bytes, spi: int, seq: int, length: int) -> bytes:
    """SHA-256 counter-mode keystream, deterministic per (key, spi, seq)."""
    out = bytearray()
    counter = 0
    seed = key + spi.to_bytes(4, "big") + seq.to_bytes(4, "big")
    while len(out) < length:
        out.extend(hashlib.sha256(seed + counter.to_bytes(4, "big")).digest())
        counter += 1
    return bytes(out[:length])


def xor_bytes(data: bytes, stream: bytes) -> bytes:
    return bytes(a ^ b for a, b in zip(data, stream))


class IpsecEngine(Engine):
    """ESP tunnel-mode encrypt/decrypt as a PANIC offload engine."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        fixed_cycles: int = 32,
        cycles_per_byte: float = 0.5,
        freq_hz: float = 500 * MHZ,
        queue_capacity: Optional[int] = None,
        drop_on_auth_failure: bool = False,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz,
                         queue_capacity=queue_capacity, **engine_kwargs)
        if cycles_per_byte <= 0:
            raise ValueError(f"{name}: cycles_per_byte must be positive")
        self.fixed_cycles = fixed_cycles
        self.cycles_per_byte = cycles_per_byte
        #: Production profile: silently drop packets that fail ICV or
        #: reference an unknown SPI instead of raising.
        self.drop_on_auth_failure = drop_on_auth_failure
        self._sa_by_spi: Dict[int, IpsecSa] = {}
        self.encrypted = Counter(f"{name}.encrypted")
        self.decrypted = Counter(f"{name}.decrypted")
        self.auth_failures = Counter(f"{name}.auth_failures")
        self.dropped_packets = Counter(f"{name}.dropped_packets")

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def install_sa(self, sa: IpsecSa) -> None:
        if sa.spi in self._sa_by_spi:
            raise ValueError(f"{self.name}: SPI {sa.spi:#x} already installed")
        self._sa_by_spi[sa.spi] = sa

    def sa(self, spi: int) -> IpsecSa:
        try:
            return self._sa_by_spi[spi]
        except KeyError:
            raise IpsecError(f"{self.name}: unknown SPI {spi:#x}") from None

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def service_time_ps(self, packet: Packet) -> int:
        cycles = self.fixed_cycles + self.cycles_per_byte * packet.frame_bytes
        return self.clock.cycles_to_ps(cycles)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def handle(self, packet: Packet) -> List[EngineOutput]:
        direction = self._classify(packet)
        if direction == "decrypt":
            if self.drop_on_auth_failure:
                try:
                    out = self.decrypt(packet)
                except IpsecError:
                    self.dropped_packets.add()
                    return []
            else:
                out = self.decrypt(packet)
        elif direction == "encrypt":
            spi = int(packet.meta.annotations["ipsec_spi"])
            out = self.encrypt(packet, spi)
        else:
            # Not IPSec traffic: pass through untouched.
            return [(packet, None)]
        return [(out, None)]

    def _classify(self, packet: Packet) -> str:
        if "ipsec_spi" in packet.meta.annotations:
            return "encrypt"
        try:
            eth, rest = EthernetHeader.unpack(packet.data)
            if eth.ethertype != ETHERTYPE_IPV4:
                return "passthrough"
            ipv4, _ = Ipv4Header.unpack(rest)
        except HeaderError:
            return "passthrough"
        return "decrypt" if ipv4.protocol == IP_PROTO_ESP else "passthrough"

    def encrypt(self, packet: Packet, spi: int) -> Packet:
        """Tunnel-mode encapsulate: the whole inner IPv4 packet becomes
        ESP ciphertext inside a fresh outer IPv4 header."""
        sa = self.sa(spi)
        eth, inner = EthernetHeader.unpack(packet.data)
        seq = sa.next_seq
        sa.next_seq += 1
        stream = keystream(sa.key, spi, seq, len(inner))
        ciphertext = xor_bytes(inner, stream)
        icv = crc32(ciphertext).to_bytes(ICV_BYTES, "big")
        esp = EspHeader(spi, seq)
        body = esp.pack() + ciphertext + icv
        outer = Ipv4Header(
            src=sa.tunnel_src,
            dst=sa.tunnel_dst,
            protocol=IP_PROTO_ESP,
            total_length=Ipv4Header.LENGTH + len(body),
        )
        out = Packet(eth.pack() + outer.pack() + body, packet.kind, packet.meta)
        out.panic = packet.panic
        out.meta.annotations.pop("ipsec_spi", None)
        out.meta.annotations["ipsec_encrypted"] = True
        self.encrypted.add()
        return out

    def decrypt(self, packet: Packet) -> Packet:
        """Reverse of :meth:`encrypt`; raises on ICV mismatch."""
        eth, rest = EthernetHeader.unpack(packet.data)
        outer, rest = Ipv4Header.unpack(rest)
        if outer.protocol != IP_PROTO_ESP:
            raise IpsecError(f"{self.name}: not an ESP packet")
        body = rest[: outer.total_length - Ipv4Header.LENGTH]
        esp, remainder = EspHeader.unpack(body)
        if len(remainder) < ICV_BYTES:
            raise IpsecError(f"{self.name}: ESP payload shorter than ICV")
        ciphertext, icv = remainder[:-ICV_BYTES], remainder[-ICV_BYTES:]
        sa = self.sa(esp.spi)
        if crc32(ciphertext) != int.from_bytes(icv, "big"):
            self.auth_failures.add()
            raise IpsecError(f"{self.name}: ICV mismatch for SPI {esp.spi:#x}")
        stream = keystream(sa.key, esp.spi, esp.seq, len(ciphertext))
        inner = xor_bytes(ciphertext, stream)
        out = Packet(eth.pack() + inner, packet.kind, packet.meta)
        out.panic = packet.panic
        out.meta.annotations["ipsec_decrypted"] = True
        self.decrypted.add()
        return out
