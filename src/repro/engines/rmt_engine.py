"""The heavyweight RMT pipeline as an engine tile (Figure 3b).

Timing follows section 4.2 exactly: a pipeline running at frequency ``F``
with ``P`` parallel pipelines processes ``F * P`` packets per second.  The
engine is *fully pipelined*: it accepts a new packet every ``1 / (F * P)``
seconds regardless of pipeline depth, and each packet's latency is the
stage count (parser + M+A stages + deparser) times the cycle time,
multiplied by the number of chained RMT engines.

What happens to a processed packet is delegated to a ``decision_handler``
-- the PANIC core installs one that converts the PHV into a chain header
and slack deadline; the FlexNIC baseline installs a simpler queue-steering
handler.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.engines.base import Engine, EngineOutput
from repro.noc.message import NocMessage
from repro.packet.packet import Packet
from repro.rmt.phv import Phv
from repro.rmt.pipeline import RmtPipeline, RmtProgram
from repro.sim.clock import MHZ
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter, RateMeter

#: Extra cycles charged for the parser and deparser surrounding the
#: match+action stages.
PARSER_CYCLES = 1
DEPARSER_CYCLES = 1

#: A decision handler: converts (packet, phv) into routed outputs.
DecisionHandler = Callable[[Packet, Phv], List[EngineOutput]]

#: Memoized ``enum.value.encode()`` results for intrinsic metadata.
_ENUM_BYTES: dict = {}

#: Shared intrinsic-metadata dicts keyed by (direction, kind, ingress,
#: egress, tenant).  Read-only by contract; bounded by wholesale
#: clearing.
_INTRINSIC_MEMO: dict = {}


class RmtPipelineEngine(Engine):
    """The heavyweight RMT pipeline tile.

    Parameters
    ----------
    program:
        The match+action program to execute.
    pipelines:
        ``P`` -- parallel pipelines; throughput is ``F * P`` pps.
    chained_engines:
        How many RMT engine tiles are chained into this logical pipeline
        (section 3.1.2: "neighboring engines may ... be chained to form a
        longer pipeline"); multiplies latency and stage budget but not
        throughput.
    decision_handler:
        Interprets the resulting PHV; defaults to chain-header routing
        installed by the PANIC core.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        program: RmtProgram,
        pipelines: int = 1,
        chained_engines: int = 1,
        freq_hz: float = 500 * MHZ,
        decision_handler: Optional[DecisionHandler] = None,
        memo: bool = False,
    ):
        super().__init__(sim, name, freq_hz=freq_hz)
        if pipelines < 1:
            raise ValueError(f"{name}: pipelines must be >= 1")
        if chained_engines < 1:
            raise ValueError(f"{name}: chained_engines must be >= 1")
        self.pipeline = RmtPipeline(program, memo=memo)
        self.pipelines = pipelines
        self.chained_engines = chained_engines
        self.decision_handler = decision_handler
        self._next_accept_ps = 0
        self.pps_meter = RateMeter(f"{name}.pps")
        self.decisions = Counter(f"{name}.decisions")

    # ------------------------------------------------------------------
    # Timing model
    # ------------------------------------------------------------------

    @property
    def initiation_interval_ps(self) -> int:
        """Time between packet admissions: one cycle shared by P pipelines."""
        return max(1, self.clock.period_ps // self.pipelines)

    @property
    def latency_ps(self) -> int:
        """End-to-end pipeline latency for one packet."""
        stages = (
            PARSER_CYCLES + self.pipeline.program.num_stages + DEPARSER_CYCLES
        ) * self.chained_engines
        return self.clock.cycles_to_ps(stages)

    @property
    def throughput_pps(self) -> float:
        """The paper's F*P packets-per-second figure."""
        return self.clock.freq_hz * self.pipelines

    # ------------------------------------------------------------------
    # Engine overrides: fully pipelined service
    # ------------------------------------------------------------------

    def _try_start(self) -> None:
        # Admit from the scheduling queue at the initiation interval; each
        # admitted packet completes `latency` later.  No lane blocking --
        # the pipeline is, well, a pipeline.
        if self.fault_mode is not None:
            return
        while not self.queue.is_empty:
            message, _rank = self.queue.pop()
            start = max(self.now, self._next_accept_ps)
            self._next_accept_ps = start + self.initiation_interval_ps
            enq = message.packet.meta.annotations.pop("enqueue_ps", self.now)
            self.queue_latency.observe(enq, self.now)
            if self._tracer is not None:
                ctx = message.packet.meta.annotations.get("__trace__")
                if ctx is not None:
                    ctx.service_start = start
            finish = start + self.latency_ps
            self.schedule(finish - self.now, self._finish_rmt, message, start)

    def _finish_rmt(self, message: NocMessage, started_ps: int) -> None:
        from repro.engines.base import FAULT_CRASH

        tracer = self._tracer
        ctx = (message.packet.meta.annotations.get("__trace__")
               if tracer is not None else None)
        if self.fault_mode == FAULT_CRASH:
            self.blackholed.add()
            if ctx is not None and ctx.open_component is not None:
                tracer.end_engine(ctx, self.now, status="blackholed")
            return
        self.processed.add()
        self.pps_meter.record(self.now)
        self.service_latency.observe(started_ps, self.now)
        if ctx is not None:
            tracer.end_engine(ctx, self.now)
        packet = message.packet
        if self._echo_heartbeat(packet):
            self._try_start()
            return
        packet.touch(self.name)
        phv = self.pipeline.process(
            packet.data,
            metadata=self._intrinsic_metadata(packet),
            now_ps=self.now,
        )
        self.decisions.add()
        outputs = self.decide(packet, phv)
        for out_packet, dest in outputs:
            if dest is None:
                dest = self._route_by_chain(out_packet)
            if dest is None:
                self.terminal(out_packet)
            elif dest == self.address:
                self._loopback(out_packet)
            else:
                self.send(out_packet, dest)

    def _intrinsic_metadata(self, packet: Packet) -> dict:
        meta = packet.meta
        key = (meta.direction, packet.kind, meta.ingress_port,
               meta.egress_port, meta.tenant)
        # The dict is a pure function of the key and is only ever read
        # (pipeline.process iterates it), so one shared instance per
        # distinct key serves every frame of a flow.
        cached = _INTRINSIC_MEMO.get(key)
        if cached is not None:
            return cached
        direction, kind, ingress, egress, tenant = key
        # The encoded enum values are constants; encode each once.
        encoded = _ENUM_BYTES.get(direction)
        if encoded is None:
            encoded = _ENUM_BYTES[direction] = direction.value.encode()
        fields = {"direction": encoded}
        encoded = _ENUM_BYTES.get(kind)
        if encoded is None:
            encoded = _ENUM_BYTES[kind] = kind.value.encode()
        fields["kind"] = encoded
        if ingress is not None:
            fields["ingress_port"] = ingress
        if egress is not None:
            fields["egress_port"] = egress
        if tenant is not None:
            fields["tenant"] = tenant
        if len(_INTRINSIC_MEMO) >= 512:
            _INTRINSIC_MEMO.clear()
        _INTRINSIC_MEMO[key] = fields
        return fields

    def decide(self, packet: Packet, phv: Phv) -> List[EngineOutput]:
        """Turn the pipeline's PHV into routing decisions."""
        if self.decision_handler is None:
            raise RuntimeError(
                f"{self.name}: no decision handler installed; the NIC "
                "builder must provide one"
            )
        return self.decision_handler(packet, phv)
