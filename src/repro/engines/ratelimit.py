"""The rate-limiter engine (SENIC-style end-host rate limiting).

Table 1 lists SENIC's "Infrastructure Inline Network" offload -- per-flow
rate limiting pushed from the hypervisor into the NIC.  As a PANIC
engine it implements per-tenant token buckets: a packet whose tenant has
insufficient tokens is *held* inside the engine and released (down its
chain) exactly when its bucket refills -- hardware pacing, not drops.

Tenants without a configured bucket pass through unshaped.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engines.base import Engine, EngineOutput
from repro.packet.packet import Packet
from repro.sim.clock import MHZ, SEC
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter


@dataclass
class TokenBucket:
    """A classic token bucket in byte units."""

    rate_bps: float
    burst_bytes: int
    tokens: float = 0.0
    last_refill_ps: int = 0

    def __post_init__(self) -> None:
        if self.rate_bps <= 0 or self.burst_bytes <= 0:
            raise ValueError("rate and burst must be positive")
        self.tokens = float(self.burst_bytes)

    def refill(self, now_ps: int) -> None:
        elapsed = now_ps - self.last_refill_ps
        if elapsed <= 0:
            return
        self.tokens = min(
            float(self.burst_bytes),
            self.tokens + self.rate_bps * elapsed / (8 * SEC),
        )
        self.last_refill_ps = now_ps

    def try_consume(self, nbytes: int, now_ps: int) -> bool:
        self.refill(now_ps)
        if self.tokens >= nbytes:
            self.tokens -= nbytes
            return True
        return False

    def eligible_at(self, nbytes: int, now_ps: int) -> int:
        """Earliest time ``nbytes`` tokens will be available."""
        self.refill(now_ps)
        deficit = nbytes - self.tokens
        if deficit <= 0:
            return now_ps
        wait_ps = deficit * 8 * SEC / self.rate_bps
        return now_ps + int(wait_ps) + 1


class RateLimiterEngine(Engine):
    """Per-tenant token-bucket pacing as a chain offload."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        check_cycles: int = 4,
        freq_hz: float = 500 * MHZ,
        queue_capacity: Optional[int] = None,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz,
                         queue_capacity=queue_capacity, **engine_kwargs)
        self.check_cycles = check_cycles
        self._buckets: Dict[int, TokenBucket] = {}
        self.shaped = Counter(f"{name}.shaped")
        self.passed = Counter(f"{name}.passed")
        self.held = Counter(f"{name}.held")

    # ------------------------------------------------------------------
    # Control plane
    # ------------------------------------------------------------------

    def set_rate(self, tenant: int, rate_bps: float, burst_bytes: int = 4096) -> None:
        """Install/replace a tenant's shaping rate."""
        self._buckets[tenant] = TokenBucket(rate_bps, burst_bytes,
                                            last_refill_ps=self.now)

    def set_rate_update(self, tenant: int, rate_bps: float) -> None:
        """Adjust an existing bucket's rate in place (tokens preserved).

        Used by congestion controllers that retune rates continuously;
        creates the bucket if the tenant was unshaped.
        """
        bucket = self._buckets.get(tenant)
        if bucket is None:
            self.set_rate(tenant, rate_bps)
            return
        bucket.refill(self.now)
        if rate_bps <= 0:
            raise ValueError(f"{self.name}: rate must be positive")
        bucket.rate_bps = rate_bps

    def clear_rate(self, tenant: int) -> None:
        self._buckets.pop(tenant, None)

    def bucket(self, tenant: int) -> Optional[TokenBucket]:
        return self._buckets.get(tenant)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def service_time_ps(self, packet: Packet) -> int:
        return self.clock.cycles_to_ps(self.check_cycles)

    def handle(self, packet: Packet) -> List[EngineOutput]:
        tenant = packet.meta.tenant
        bucket = self._buckets.get(tenant) if tenant is not None else None
        if bucket is None:
            self.passed.add()
            return [(packet, None)]
        size = packet.frame_bytes
        if bucket.try_consume(size, self.now):
            self.shaped.add()
            return [(packet, None)]
        # Hold until eligible, then release down the chain.
        release_at = bucket.eligible_at(size, self.now)
        self.held.add()
        self.schedule(release_at - self.now, self._release, packet, size)
        return []

    def _release(self, packet: Packet, size: int) -> None:
        tenant = packet.meta.tenant
        bucket = self._buckets.get(tenant) if tenant is not None else None
        if bucket is not None and not bucket.try_consume(size, self.now):
            # Competing holds drained the bucket again; re-wait.
            self.schedule(
                bucket.eligible_at(size, self.now) - self.now,
                self._release, packet, size,
            )
            return
        self.shaped.add()
        dest = self._route_by_chain(packet)
        if dest is None:
            self.terminal(packet)
        elif dest == self.address:
            self._loopback(packet)
        else:
            self.send(packet, dest)
