"""The RDMA engine: CPU-bypass reads of host memory.

In the paper's section 3.2 walk-through, a GET that hits the on-NIC
*location* cache "will be forwarded to an RDMA engine.  This RDMA engine
will then issue DMA requests (via the pipeline) to read the value,
generate the packet headers for the response, and then inject this new
response into the pipeline."

This engine implements that flow: a KV GET arriving here is turned into
a ``DMA_READ`` toward the DMA engine; the completion (carrying the bytes
from host memory) is matched back to the pending request, a KvResponse
frame is synthesized, and the response heads back through the RMT
pipeline for egress -- the CPU never runs.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.engines.base import Engine, EngineOutput
from repro.packet.builder import build_udp_frame, parse_frame
from repro.packet.headers import HeaderError
from repro.packet.kv import KvOpcode, KvRequest, KvResponse, KvStatus, KV_UDP_PORT
from repro.packet.packet import Direction, MessageKind, Packet
from repro.sim.clock import MHZ
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter


class RdmaEngine(Engine):
    """Serve KV GETs by DMA-reading host memory, bypassing the CPU."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        request_cycles: int = 16,
        freq_hz: float = 500 * MHZ,
        queue_capacity: Optional[int] = None,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz,
                         queue_capacity=queue_capacity, **engine_kwargs)
        self.request_cycles = request_cycles
        #: The DMA engine's NoC address; set by the NIC builder.
        self.dma_addr: Optional[int] = None
        self._pending: Dict[int, Packet] = {}
        self.reads_issued = Counter(f"{name}.reads_issued")
        self.responses = Counter(f"{name}.responses")
        self.not_found = Counter(f"{name}.not_found")

    def service_time_ps(self, packet: Packet) -> int:
        return self.clock.cycles_to_ps(self.request_cycles)

    def handle(self, packet: Packet) -> List[EngineOutput]:
        if packet.kind == MessageKind.DMA_COMPLETION:
            return self._handle_completion(packet)
        request = self._parse_get(packet)
        if request is None:
            return [(packet, None)]
        if self.dma_addr is None:
            raise RuntimeError(f"{self.name}: no DMA engine address configured")
        # Issue the DMA read; remember the original request for later.
        read = Packet(b"", MessageKind.DMA_READ)
        read.meta.direction = Direction.INTERNAL
        read.meta.tenant = request.tenant
        read.meta.annotations["dma_key"] = bytes(request.key)
        read.meta.annotations["dma_bytes"] = 256
        read.meta.annotations["reply_to"] = self.address
        read.meta.annotations["rdma_ctx"] = packet.packet_id
        if packet.panic is not None:
            read.panic = packet.panic.copy()
            read.panic.chain = []
            read.panic.cursor = 0
        self._pending[packet.packet_id] = packet
        self.reads_issued.add()
        return [(read, self.dma_addr)]

    def _handle_completion(self, completion: Packet) -> List[EngineOutput]:
        ctx = completion.meta.annotations.get("rdma_ctx")
        if ctx is None:
            ctx = completion.meta.annotations.get("completes")
        original = None
        if ctx is not None:
            # The DMA engine copies annotations we stashed on the read.
            for pending_id in list(self._pending):
                if pending_id == completion.meta.annotations.get("rdma_ctx"):
                    original = self._pending.pop(pending_id)
                    break
        if original is None and self._pending:
            # Single-outstanding fallback: match FIFO.
            original = self._pending.pop(next(iter(self._pending)))
        if original is None:
            return []
        request = self._parse_get(original)
        assert request is not None
        data = completion.meta.annotations.get("dma_data")
        if data is None:
            self.not_found.add()
            response = KvResponse(KvStatus.NOT_FOUND, request.tenant, request.request_id)
        else:
            response = KvResponse(KvStatus.OK, request.tenant, request.request_id, data)
        out = self._build_response(original, request, response)
        self.responses.add()
        return [(out, None)]

    def _parse_get(self, packet: Packet) -> Optional[KvRequest]:
        if packet.kind != MessageKind.ETHERNET:
            return None
        try:
            frame = parse_frame(packet.data)
            if not frame.is_kv or not frame.payload:
                return None
            if frame.payload[0] != KvOpcode.GET:
                return None
            return frame.kv_request()
        except HeaderError:
            return None

    def _build_response(
        self, original: Packet, request: KvRequest, response: KvResponse
    ) -> Packet:
        frame = parse_frame(original.data)
        assert frame.ipv4 is not None and frame.udp is not None
        data = build_udp_frame(
            src_mac=frame.eth.dst,
            dst_mac=frame.eth.src,
            src_ip=frame.ipv4.dst,
            dst_ip=frame.ipv4.src,
            src_port=KV_UDP_PORT,
            dst_port=frame.udp.src_port,
            payload=response.pack(),
            identification=request.request_id & 0xFFFF,
        )
        out = Packet(data, MessageKind.ETHERNET)
        out.meta.direction = Direction.TX
        out.meta.tenant = request.tenant
        out.meta.nic_arrival_ps = original.meta.nic_arrival_ps
        out.meta.created_ps = original.meta.created_ps
        out.meta.egress_port = original.meta.ingress_port
        out.meta.annotations["rdma_served"] = True
        out.meta.annotations["request_ctx"] = original.meta.annotations.get("request_ctx")
        return out

    @property
    def pending_reads(self) -> int:
        return len(self._pending)
