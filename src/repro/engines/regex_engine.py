"""The regular-expression / DPI offload engine.

The paper's introduction lists "regular expression engines" among the
offload types PANIC must host.  This engine runs a from-scratch
Aho-Corasick multi-pattern matcher over the transport payload -- the
textbook hardware-DPI algorithm -- annotating matches, and optionally
dropping packets that hit a blocklist pattern.
"""

from __future__ import annotations

import re
from collections import deque
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.engines.base import Engine, EngineOutput
from repro.packet.builder import parse_frame
from repro.packet.headers import HeaderError
from repro.packet.packet import Packet
from repro.sim.clock import MHZ
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter


class AhoCorasick:
    """A from-scratch Aho-Corasick automaton over byte patterns."""

    def __init__(self, patterns: Iterable[bytes]):
        self._patterns = [bytes(p) for p in patterns]
        if any(not p for p in self._patterns):
            raise ValueError("empty patterns are not allowed")
        # goto function: list of dicts byte -> state
        self._goto: List[Dict[int, int]] = [{}]
        self._fail: List[int] = [0]
        self._output: List[Set[int]] = [set()]
        for index, pattern in enumerate(self._patterns):
            self._insert(pattern, index)
        self._build_failure_links()
        # Scan accelerators: per-state output tuples (avoids set iteration
        # on the no-match path), and a compiled character class of the
        # root's transition bytes -- while in the root state the scan can
        # jump straight to the next byte any pattern starts with.
        self._out: List[Tuple[int, ...]] = [tuple(s) for s in self._output]
        self._root_skip = (
            re.compile(
                b"[" + b"".join(
                    re.escape(bytes([b])) for b in self._goto[0]
                ) + b"]"
            )
            if self._goto[0] else None
        )

    def _insert(self, pattern: bytes, index: int) -> None:
        state = 0
        for byte in pattern:
            nxt = self._goto[state].get(byte)
            if nxt is None:
                nxt = len(self._goto)
                self._goto.append({})
                self._fail.append(0)
                self._output.append(set())
                self._goto[state][byte] = nxt
            state = nxt
        self._output[state].add(index)

    def _build_failure_links(self) -> None:
        queue = deque()
        for byte, state in self._goto[0].items():
            self._fail[state] = 0
            queue.append(state)
        while queue:
            current = queue.popleft()
            for byte, nxt in self._goto[current].items():
                queue.append(nxt)
                fallback = self._fail[current]
                while fallback and byte not in self._goto[fallback]:
                    fallback = self._fail[fallback]
                self._fail[nxt] = self._goto[fallback].get(byte, 0)
                if self._fail[nxt] == nxt:
                    self._fail[nxt] = 0
                self._output[nxt] |= self._output[self._fail[nxt]]

    def search(self, data: bytes) -> List[Tuple[int, int]]:
        """Return ``(end_offset, pattern_index)`` for every match."""
        matches = []
        state = 0
        goto = self._goto
        fail = self._fail
        out = self._out
        skip = self._root_skip
        length = len(data)
        offset = 0
        while offset < length:
            if state == 0 and skip is not None:
                # Root state: no partial match pending, so bytes outside
                # every pattern's first-byte set cannot change anything.
                found = skip.search(data, offset)
                if found is None:
                    break
                offset = found.start()
            byte = data[offset]
            while state and byte not in goto[state]:
                state = fail[state]
            state = goto[state].get(byte, 0)
            hits = out[state]
            if hits:
                for index in hits:
                    matches.append((offset + 1, index))
            offset += 1
        return matches

    @property
    def patterns(self) -> List[bytes]:
        return list(self._patterns)


class RegexEngine(Engine):
    """DPI over payloads: annotate matches, optionally drop blocked ones."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        patterns: Iterable[bytes] = (),
        block_patterns: Iterable[bytes] = (),
        fixed_cycles: int = 16,
        cycles_per_byte: float = 1.0,
        freq_hz: float = 500 * MHZ,
        queue_capacity: Optional[int] = None,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz,
                         queue_capacity=queue_capacity, **engine_kwargs)
        block = [bytes(p) for p in block_patterns]
        watch = [bytes(p) for p in patterns]
        self._block_count = len(block)
        self.automaton = AhoCorasick(block + watch) if (block or watch) else None
        self.fixed_cycles = fixed_cycles
        self.cycles_per_byte = cycles_per_byte
        self.scanned = Counter(f"{name}.scanned")
        self.matched = Counter(f"{name}.matched")
        self.blocked = Counter(f"{name}.blocked")

    def service_time_ps(self, packet: Packet) -> int:
        cycles = self.fixed_cycles + self.cycles_per_byte * packet.frame_bytes
        return self.clock.cycles_to_ps(cycles)

    def handle(self, packet: Packet) -> List[EngineOutput]:
        if self.automaton is None:
            return [(packet, None)]
        try:
            payload = parse_frame(packet.data).payload
        except HeaderError:
            payload = packet.data
        matches = self.automaton.search(payload)
        self.scanned.add()
        if matches:
            self.matched.add()
            packet.meta.annotations["dpi_matches"] = [
                (end, self.automaton.patterns[idx]) for end, idx in matches
            ]
            if any(idx < self._block_count for _end, idx in matches):
                self.blocked.add()
                # Swallow the packet: DPI verdict is drop.
                return []
        return [(packet, None)]
