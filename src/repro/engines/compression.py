"""The compression offload engine (LZ77, implemented from scratch).

Another offload the paper names as impossible in an RMT pipeline
(section 2.3.3: "RMT NICs cannot support compression").  The engine
compresses or decompresses the transport payload of a frame in place,
with a per-byte timing model.

Format: a 1-byte tag stream -- literal runs and back-references --
compact enough to show real ratios on text-like payloads while staying
dependency-free and exactly invertible (tests assert round trips).

Wire format of the compressed payload::

    magic "LZ1" + u32 original_length + token stream
    token 0x00 len  <bytes>      -- literal run (len 1..255)
    token 0x01 dist:u16 len:u8   -- back-reference (len 3..255)
"""

from __future__ import annotations

import struct
from typing import Dict, List, Optional, Tuple

from repro.engines.base import Engine, EngineOutput
from repro.packet.headers import (
    EthernetHeader,
    HeaderError,
    Ipv4Header,
    UdpHeader,
)
from repro.packet.packet import Packet
from repro.sim.clock import MHZ
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter

MAGIC = b"LZ1"
_MIN_MATCH = 4
_MAX_MATCH = 255
_WINDOW = 4096


class CompressionError(RuntimeError):
    """Raised when decompressing malformed data."""


def compress(data: bytes) -> bytes:
    """LZ77-compress ``data`` (greedy hash-chain matcher)."""
    out = bytearray(MAGIC + struct.pack("!I", len(data)))
    table: Dict[bytes, int] = {}
    literals = bytearray()

    def flush_literals() -> None:
        start = 0
        while start < len(literals):
            run = literals[start : start + 255]
            out.append(0x00)
            out.append(len(run))
            out.extend(run)
            start += len(run)
        literals.clear()

    i = 0
    n = len(data)
    while i < n:
        match_len = 0
        match_dist = 0
        if i + _MIN_MATCH <= n:
            key = bytes(data[i : i + _MIN_MATCH])
            candidate = table.get(key)
            if candidate is not None and i - candidate <= _WINDOW:
                length = _MIN_MATCH
                limit = min(_MAX_MATCH, n - i)
                while (
                    length < limit
                    and data[candidate + length] == data[i + length]
                ):
                    length += 1
                match_len = length
                match_dist = i - candidate
            table[key] = i
        if match_len >= _MIN_MATCH:
            flush_literals()
            out.append(0x01)
            out.extend(struct.pack("!HB", match_dist, match_len))
            i += match_len
        else:
            literals.append(data[i])
            i += 1
    flush_literals()
    return bytes(out)


def decompress(blob: bytes) -> bytes:
    """Invert :func:`compress`; validates magic, length and references."""
    if len(blob) < len(MAGIC) + 4 or blob[: len(MAGIC)] != MAGIC:
        raise CompressionError("bad compression magic")
    (expected_len,) = struct.unpack("!I", blob[3:7])
    out = bytearray()
    i = 7
    n = len(blob)
    while i < n:
        token = blob[i]
        i += 1
        if token == 0x00:
            if i >= n:
                raise CompressionError("truncated literal token")
            run_len = blob[i]
            i += 1
            if run_len == 0 or i + run_len > n:
                raise CompressionError("bad literal run")
            out.extend(blob[i : i + run_len])
            i += run_len
        elif token == 0x01:
            if i + 3 > n:
                raise CompressionError("truncated match token")
            dist, length = struct.unpack("!HB", blob[i : i + 3])
            i += 3
            if dist == 0 or dist > len(out):
                raise CompressionError(f"bad match distance {dist}")
            for _ in range(length):
                out.append(out[-dist])
        else:
            raise CompressionError(f"unknown token {token:#x}")
    if len(out) != expected_len:
        raise CompressionError(
            f"decompressed {len(out)} bytes, expected {expected_len}"
        )
    return bytes(out)


class CompressionEngine(Engine):
    """Compress/decompress UDP payloads as a chain offload.

    Mode is chosen per packet: ``meta.annotations['compress']`` requests
    compression; payloads that already carry the magic are decompressed;
    anything else passes through.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        fixed_cycles: int = 24,
        cycles_per_byte: float = 1.0,
        freq_hz: float = 500 * MHZ,
        queue_capacity: Optional[int] = None,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz,
                         queue_capacity=queue_capacity, **engine_kwargs)
        self.fixed_cycles = fixed_cycles
        self.cycles_per_byte = cycles_per_byte
        self.compressed = Counter(f"{name}.compressed")
        self.decompressed = Counter(f"{name}.decompressed")
        self.bytes_saved = Counter(f"{name}.bytes_saved")

    def service_time_ps(self, packet: Packet) -> int:
        cycles = self.fixed_cycles + self.cycles_per_byte * packet.frame_bytes
        return self.clock.cycles_to_ps(cycles)

    def handle(self, packet: Packet) -> List[EngineOutput]:
        split = self._split_udp(packet.data)
        if split is None:
            return [(packet, None)]
        headers, payload = split
        if packet.meta.annotations.pop("compress", False):
            new_payload = compress(payload)
            if len(new_payload) >= len(payload):
                # Incompressible: send as-is (the tag's absence says so).
                return [(packet, None)]
            self.compressed.add()
            self.bytes_saved.add(len(payload) - len(new_payload))
            out = self._rebuild(packet, headers, new_payload)
            out.meta.annotations["compressed"] = True
            return [(out, None)]
        if payload.startswith(MAGIC):
            new_payload = decompress(payload)
            self.decompressed.add()
            out = self._rebuild(packet, headers, new_payload)
            out.meta.annotations["decompressed"] = True
            return [(out, None)]
        return [(packet, None)]

    @staticmethod
    def _split_udp(data: bytes) -> Optional[Tuple[Tuple, bytes]]:
        try:
            eth, rest = EthernetHeader.unpack(data)
            ipv4, rest = Ipv4Header.unpack(rest)
            if ipv4.protocol != 17:
                return None
            udp, rest = UdpHeader.unpack(rest)
        except HeaderError:
            return None
        payload = rest[: udp.length - UdpHeader.LENGTH]
        return (eth, ipv4, udp), payload

    @staticmethod
    def _rebuild(packet: Packet, headers: Tuple, payload: bytes) -> Packet:
        eth, ipv4, udp = headers
        new_udp = UdpHeader(udp.src_port, udp.dst_port, UdpHeader.LENGTH + len(payload))
        new_ip = Ipv4Header(
            src=ipv4.src,
            dst=ipv4.dst,
            protocol=ipv4.protocol,
            total_length=Ipv4Header.LENGTH + new_udp.length,
            ttl=ipv4.ttl,
            dscp=ipv4.dscp,
            identification=ipv4.identification,
        )
        frame = eth.pack() + new_ip.pack() + new_udp.pack_with_checksum(new_ip, payload) + payload
        out = Packet(frame, packet.kind, packet.meta)
        out.panic = packet.panic
        return out
