"""The Ethernet MAC port engine.

In PANIC even the Ethernet ports are engines on the mesh (Figure 3c).
The MAC models the external wire in both directions at the configured
line rate: ingress frames arrive after their serialization time and are
forwarded to the RMT pipeline (the port's lookup-table default route);
egress frames whose chain ends here are transmitted onto the wire, again
honouring line rate, and handed to the ``on_transmit`` callback.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.engines.base import Engine, EngineOutput
from repro.packet.packet import Direction, MessageKind, Packet
from repro.sim.clock import MHZ, SEC
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter, LatencyTracker, RateMeter

#: 100 Gbps, the paper's headline line rate.
DEFAULT_LINE_RATE = 100e9


class EthernetPort(Engine):
    """A full-duplex Ethernet MAC attached to the mesh.

    Parameters
    ----------
    port_index:
        External port number (``meta.ingress_port`` for RX frames).
    line_rate_bps:
        Wire speed; serialization of a frame takes ``wire_bits / rate``.
    on_transmit:
        Called with each frame that leaves on the wire (the experiment's
        external sink).
    """

    #: The NIC's :class:`~repro.telemetry.int_.IntAgent`, installed by
    #: ``PanicNic`` when INT is configured: MAC egress is where a hop's
    #: record is finalized (and, in-band, the trailer grows the frame).
    _int_agent = None

    def __init__(
        self,
        sim: Simulator,
        name: str,
        port_index: int = 0,
        line_rate_bps: float = DEFAULT_LINE_RATE,
        freq_hz: float = 500 * MHZ,
        on_transmit: Optional[Callable[[Packet], None]] = None,
    ):
        super().__init__(sim, name, freq_hz=freq_hz)
        if line_rate_bps <= 0:
            raise ValueError(f"{name}: line rate must be positive")
        self.port_index = port_index
        self.line_rate_bps = line_rate_bps
        self.on_transmit = on_transmit
        self._rx_wire_free_ps = 0
        self._tx_wire_free_ps = 0
        self.rx_frames = Counter(f"{name}.rx_frames")
        self.tx_frames = Counter(f"{name}.tx_frames")
        self.rx_bits = RateMeter(f"{name}.rx_bits")
        self.tx_bits = RateMeter(f"{name}.tx_bits")
        self.nic_latency = LatencyTracker(f"{name}.nic_latency")

    # ------------------------------------------------------------------
    # External wire: ingress
    # ------------------------------------------------------------------

    def wire_time_ps(self, packet: Packet) -> int:
        """Serialization time of ``packet`` at this port's line rate."""
        return int(packet.wire_bits * SEC / self.line_rate_bps)

    def inject_rx(self, packet: Packet) -> int:
        """Offer a frame from the external wire.

        Returns the simulated arrival completion time.  Back-to-back
        injections serialize at line rate, so a generator may inject a
        burst and the MAC spaces it out, exactly like a saturated wire.
        """
        start = max(self.now, self._rx_wire_free_ps)
        arrival = start + self.wire_time_ps(packet)
        self._rx_wire_free_ps = arrival
        lane = self._train_lane
        if lane is None:
            self.schedule(arrival - self.now, self._rx_arrival, packet)
            return arrival
        # Reserve the arrival's place in the tie-break order now, but
        # enqueue nothing yet: after the injecting event's callback
        # returns (so everything it schedules is visible to the train
        # horizon), the lane either absorbs the arrival -- bookkeeping
        # plus the whole trajectory replayed in place (repro.core.train)
        # -- or commits this event, which then fires exactly as if
        # scheduled here.
        sim = self.sim
        event = sim.make_event(arrival, self._rx_arrival, packet)
        sim.defer(lane.deferred_wire_ride, self, packet, arrival, event)
        return arrival

    def _rx_arrival(self, packet: Packet) -> None:
        packet.meta.ingress_port = self.port_index
        packet.meta.direction = Direction.RX
        packet.meta.nic_arrival_ps = self.now
        packet.meta.annotations["mac_rx"] = True
        self.rx_frames.add()
        self.rx_bits.record(self.now, packet.wire_bits)
        if self.payload_buffer is not None:
            # Pointer mode (section 6): park the payload in the shared
            # buffer; only a descriptor rides the on-chip network.
            from repro.noc.pktbuffer import DESCRIPTOR_BITS

            handle = self.payload_buffer.store(packet.data)
            packet.meta.annotations["pbuf_handle"] = handle
            packet.meta.annotations["noc_bits"] = DESCRIPTOR_BITS
            write_delay = self.payload_buffer.access_delay_ps(
                packet.frame_bytes
            )
            self.schedule(write_delay, self._loopback, packet)
            return
        lane = self._train_lane
        if lane is not None and lane.try_ride(self, packet):
            # The frame's whole trajectory was replayed inside this
            # event (repro.core.train); nothing left to schedule.
            return
        self._loopback(packet)

    # ------------------------------------------------------------------
    # Engine behaviour
    # ------------------------------------------------------------------

    def handle(self, packet: Packet) -> List[EngineOutput]:
        if packet.meta.annotations.pop("mac_rx", False):
            # Fresh ingress frame: forward along the default route (the
            # heavyweight RMT pipeline) for classification.
            return [(packet, None)]
        # A frame routed here by the logical switch: transmit it.
        self._transmit(packet)
        return []

    def terminal(self, packet: Packet) -> None:
        """Chain ends at the MAC: that *is* a transmit request."""
        self._transmit(packet)

    def _transmit(self, packet: Packet) -> None:
        if self._int_agent is not None:
            # Push this hop's INT record; in-band mode appends the
            # trailer bytes *before* the serialization window below, so
            # the grown frame pays its own wire time.
            self._int_agent.on_transmit(packet, self.now)
        start = max(self.now, self._tx_wire_free_ps)
        done = start + self.wire_time_ps(packet)
        self._tx_wire_free_ps = done
        self.schedule(done - self.now, self._tx_complete, packet)

    def _tx_complete(self, packet: Packet) -> None:
        handle = packet.meta.annotations.pop("pbuf_handle", None)
        if handle is not None and self.payload_buffer is not None:
            # The frame has fully left on the wire: free the buffer slot.
            self.payload_buffer.release(handle)
            packet.meta.annotations.pop("noc_bits", None)
        packet.meta.direction = Direction.TX
        packet.meta.egress_port = self.port_index
        packet.meta.nic_departure_ps = self.now
        self.tx_frames.add()
        self.tx_bits.record(self.now, packet.wire_bits)
        if packet.meta.nic_arrival_ps is not None:
            self.nic_latency.observe(packet.meta.nic_arrival_ps, self.now)
        if self.on_transmit is not None:
            self.on_transmit(packet)

    @property
    def rx_rate_bps(self) -> float:
        return self.rx_bits.rate_per_sec(self.now)

    @property
    def tx_rate_bps(self) -> float:
        return self.tx_bits.rate_per_sec(self.now)
