"""The self-contained offload engine abstraction (Figure 3a).

Every PANIC engine tile couples four things:

* a **compute engine** -- the subclass's ``handle`` method plus its
  ``service_time_ps`` cost model;
* **local memory** -- whatever state the offload keeps (cache entries,
  cipher state), bounded by ``local_memory_bytes``;
* a **local lookup table** -- steers messages whose chain is exhausted or
  unknown without another heavyweight RMT traversal (section 3.1.2);
* a **local scheduling queue** -- a PIFO ranked by the slack deadline the
  RMT pipeline stamped into the message header (section 3.1.3).

Engines are :class:`~repro.noc.router.Endpoint`\\ s: the mesh delivers
messages to :meth:`receive`; processed messages leave through the engine's
:class:`~repro.noc.mesh.NocPort`.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Tuple, Union

from repro.noc.message import NocMessage
from repro.noc.router import Endpoint
from repro.packet.packet import MessageKind, Packet
from repro.sched.pifo import PifoFullError, PifoQueue
from repro.sim.clock import Clock, MHZ
from repro.sim.kernel import Component, Simulator
from repro.sim.stats import Counter, LatencyTracker

#: Cycles charged for a local lookup-table match (section 3.1.2: "the
#: lightweight tables also add another cycle of latency").
LOOKUP_CYCLES = 1

#: An engine's output: the packet plus an explicit destination address, or
#: ``None`` to route by the packet's chain header / local lookup table.
EngineOutput = Tuple[Packet, Optional[int]]

#: Injected fault modes (see :meth:`Engine.fail` and :mod:`repro.faults`).
FAULT_CRASH = "crash"
FAULT_STALL = "stall"


class LocalLookupTable:
    """The lightweight per-engine lookup table.

    Maps small keys (``packet.kind`` values, markers set by offloads) to
    next-hop engine addresses, with a default route -- typically back to
    the heavyweight RMT pipeline, per section 3.1.2: "either a default
    route back to the heavyweight RMT pipeline is installed at the engine
    or the RMT pipeline includes itself as a nexthop".
    """

    def __init__(self) -> None:
        self._rules: dict = {}
        self.default_next: Optional[int] = None
        self.lookups = Counter("lookup_table.lookups")

    def install(self, key, next_addr: int) -> None:
        self._rules[key] = next_addr

    def lookup(self, key) -> Optional[int]:
        self.lookups.value += 1
        hit = self._rules.get(key)
        return hit if hit is not None else self.default_next

    def remap(self, old_addr: int, new_addr: Optional[int]) -> int:
        """Failover re-steering: rewrite every next-hop equal to
        ``old_addr``.  ``new_addr=None`` deletes the rules instead (the
        key falls back to the default route).  Returns the number of
        rewritten entries (including the default)."""
        changed = 0
        for key, addr in list(self._rules.items()):
            if addr != old_addr:
                continue
            if new_addr is None:
                del self._rules[key]
            else:
                self._rules[key] = new_addr
            changed += 1
        if self.default_next == old_addr:
            self.default_next = new_addr
            changed += 1
        return changed


class Engine(Component, Endpoint):
    """Base class for every PANIC tile (offloads, MACs, DMA, PCIe, RMT).

    Parameters
    ----------
    sim, name:
        Kernel plumbing.
    freq_hz:
        The engine's clock (service times are quoted in its cycles).
    queue_capacity:
        PIFO capacity.  ``None`` (default) models a generously sized
        buffer; bounded values exercise the paper's memory-pressure and
        drop discussions.
    lanes:
        Independent service lanes (a 4-lane crypto block serves four
        messages concurrently).
    """

    #: What to do when a lossless message meets a full queue:
    #: ``"raise"`` surfaces the overflow loudly; ``"backpressure"``
    #: refuses the delivery so the router holds it, stalling the
    #: upstream credit loop (section 6's lossless flow control).
    OVERFLOW_POLICIES = ("raise", "backpressure")

    #: The NIC's :class:`~repro.core.train.TrainLane` when
    #: ``PanicConfig.batch_execution`` is on, else None.  With the
    #: default None every instrumented path costs one attribute check.
    _train_lane = None

    #: The NIC's :class:`~repro.telemetry.int_.IntAgent` when
    #: ``PanicConfig.int_`` is on, else None (same zero-cost contract).
    _int_tap = None

    def __init__(
        self,
        sim: Simulator,
        name: str,
        freq_hz: float = 500 * MHZ,
        queue_capacity: Optional[int] = None,
        lanes: int = 1,
        overflow: str = "raise",
    ):
        Component.__init__(self, sim, name)
        if lanes < 1:
            raise ValueError(f"{name}: lanes must be >= 1, got {lanes}")
        if overflow not in self.OVERFLOW_POLICIES:
            raise ValueError(
                f"{name}: overflow must be one of {self.OVERFLOW_POLICIES}, "
                f"got {overflow!r}"
            )
        self.clock = Clock(freq_hz)
        # The local-table lookup penalty never changes; precompute it.
        self._lookup_ps = self.clock.cycles_to_ps(LOOKUP_CYCLES)
        self.queue: PifoQueue[NocMessage] = PifoQueue(f"{name}.queue", queue_capacity)
        self.lookup_table = LocalLookupTable()
        self.port = None  # type: ignore[assignment]  # set by bind_port
        self.lanes = lanes
        self.overflow = overflow
        #: Shared packet buffer in pointer mode (section 6); engines that
        #: process a pointer-carried payload pay for port access.
        self.payload_buffer = None
        self._busy_lanes = 0
        #: Injected fault state (see repro.faults): ``None`` = healthy,
        #: ``"crash"`` = dead tile (black-holes all traffic), ``"stall"``
        #: = accepts but never serves.
        self.fault_mode: Optional[str] = None
        #: Set by repro.telemetry.Telemetry; instrumented paths pay only
        #: this None check when telemetry is off.
        self._tracer = None
        #: Service-time multiplier for injected slowdowns (1.0 = nominal).
        self.slowdown: float = 1.0
        # Statistics every experiment reads.
        self.processed = Counter(f"{name}.processed")
        self.rejected = Counter(f"{name}.rejected")
        self.blackholed = Counter(f"{name}.blackholed")
        self.queue_latency = LatencyTracker(f"{name}.queue_latency")
        self.service_latency = LatencyTracker(f"{name}.service_latency")

    # ------------------------------------------------------------------
    # Wiring
    # ------------------------------------------------------------------

    def bind_port(self, port) -> None:
        """Attach the NoC port returned by ``mesh.bind`` / ``xbar.bind``."""
        self.port = port

    def send(self, packet: Packet, dest_addr: int) -> None:
        """Inject a packet toward another engine."""
        if self.port is None:
            raise RuntimeError(f"{self.name}: engine has no NoC port")
        self.port.send(packet, dest_addr)

    # ------------------------------------------------------------------
    # NoC-facing receive path
    # ------------------------------------------------------------------

    def _rank_of(self, message: NocMessage):
        packet = message.packet
        if packet.panic is not None:
            return packet.panic.slack_ps, packet.panic.droppable
        return self.now, False

    def try_receive(self, message: NocMessage) -> bool:
        """Router delivery with backpressure support.

        Under the ``"backpressure"`` overflow policy a lossless message
        meeting a full queue is *refused*: the router parks it, the
        upstream credit loop stalls, and :attr:`notify_space` retries it
        once a slot frees -- one concrete answer to the paper's section 6
        flow-control question.
        """
        if self.fault_mode == FAULT_CRASH:
            # A dead tile sinks everything delivered to it: the router's
            # credit loop keeps turning (the mesh stays live) but the
            # message is lost, and counted.
            self.blackholed.add()
            return True
        if self.overflow == "backpressure" and self.queue.is_full:
            _rank, droppable = self._rank_of(message)
            if not droppable:
                self.rejected.add()
                return False
        self.receive(message)
        return True

    def receive(self, message: NocMessage) -> None:
        """Rank by slack deadline, enqueue, maybe start service."""
        tracer = self._tracer
        ctx = (message.packet.meta.annotations.get("__trace__")
               if tracer is not None else None)
        if self.fault_mode == FAULT_CRASH:
            self.blackholed.add()
            if ctx is not None:
                tracer.instant(ctx, "blackholed", self.name, self.now)
            return
        rank, droppable = self._rank_of(message)
        message.packet.meta.annotations["enqueue_ps"] = self.now
        if self._int_tap is not None:
            # INT observes the same pre-push depth the tracer records.
            self._int_tap.on_enqueue(self, message.packet, len(self.queue))
        if ctx is not None:
            # Queue depth *before* the push: what this packet saw on arrival.
            tracer.begin_engine(ctx, self.name, self.now, len(self.queue),
                                rank, droppable)
        try:
            accepted = self.queue.push(message, rank, droppable)
        except PifoFullError:
            # Lossless overflow under the "raise" policy: the paper
            # leaves NoC flow control open (section 6); surface it loudly
            # rather than silently dropping a lossless message.
            self.rejected.add()
            if ctx is not None:
                tracer.end_engine(ctx, self.now, status="overflow")
            raise
        if accepted:
            self._try_start()
        elif ctx is not None:
            # The PIFO refused the droppable incoming message outright.
            tracer.end_engine(ctx, self.now, status="dropped_at_enqueue")

    # ------------------------------------------------------------------
    # Service loop
    # ------------------------------------------------------------------

    def _try_start(self) -> None:
        if self.fault_mode is not None:
            # Crashed or stalled engines serve nothing; a stalled engine's
            # queue keeps filling until backpressure (or drops) kick in.
            return
        lane = self._train_lane
        if (lane is not None and self._busy_lanes == 0
                and len(self.queue) > 1 and lane.try_batch(self)):
            return
        freed_space = False
        while self._busy_lanes < self.lanes and not self.queue.is_empty:
            message, _rank = self.queue.pop()
            freed_space = True
            self._busy_lanes += 1
            now = self.now
            enq = message.packet.meta.annotations.pop("enqueue_ps", now)
            self.queue_latency.observe(enq, now)
            if self._tracer is not None:
                ctx = message.packet.meta.annotations.get("__trace__")
                if ctx is not None:
                    ctx.service_start = now
            delay = self.service_time_ps(message.packet)
            if self.slowdown != 1.0:
                delay = int(delay * self.slowdown)
            if self.payload_buffer is not None:
                delay += self._payload_buffer_delay(message.packet)
            self.schedule(delay, self._finish, message, now)
        if freed_space and self.notify_space is not None:
            # A router may be holding refused messages for us.
            self.notify_space()

    def _finish(self, message: NocMessage, started_ps: int) -> None:
        self._busy_lanes -= 1
        tracer = self._tracer
        ctx = (message.packet.meta.annotations.get("__trace__")
               if tracer is not None else None)
        if self.fault_mode == FAULT_CRASH:
            # The engine died while this message was in service.
            self.blackholed.add()
            if ctx is not None and ctx.open_component is not None:
                tracer.end_engine(ctx, self.now, status="blackholed")
            return
        self.processed.value += 1
        self.service_latency.observe(started_ps, self.now)
        if ctx is not None:
            tracer.end_engine(ctx, self.now)
        packet = message.packet
        if self._echo_heartbeat(packet):
            self._try_start()
            return
        packet.touch(self.name)
        outputs = self.handle(packet)
        lookup_delay = 0
        for out_packet, dest in outputs:
            if dest is None:
                dest = self._route_by_chain(out_packet)
                lookup_delay = self._lookup_ps
            if dest is None:
                self.terminal(out_packet)
            elif dest == self.address:
                # Chain loops back to this engine (e.g. a second pass).
                self.schedule(lookup_delay, self._loopback, out_packet)
            else:
                if lookup_delay:
                    self.schedule(lookup_delay, self.send, out_packet, dest)
                else:
                    self.send(out_packet, dest)
        self._try_start()

    def _payload_buffer_delay(self, packet: Packet) -> int:
        """Port-access cost for touching a pointer-carried payload.

        Processing a buffered payload means reading it and writing the
        (possibly transformed) result back: two transfers through the
        shared buffer's ports.
        """
        if self.payload_buffer is None:
            return 0
        if "pbuf_handle" not in packet.meta.annotations:
            return 0
        return self.payload_buffer.access_delay_ps(2 * packet.frame_bytes)

    def _loopback(self, packet: Packet) -> None:
        message = NocMessage(
            packet=packet,
            dest_addr=self.address,
            src_addr=self.address,
            inject_ps=self.now,
        )
        if self.overflow == "backpressure" and self.queue.is_full:
            # Local re-entry cannot be refused to a router; retry on the
            # next cycle instead of overflowing the bounded queue.
            self.schedule(self.clock.cycles_to_ps(1), self._loopback, packet)
            return
        self.receive(message)

    def _route_by_chain(self, packet: Packet) -> Optional[int]:
        """Next destination from the chain header, else the lookup table."""
        header = packet.panic
        if header is not None and not header.exhausted:
            return header.advance()
        key = packet.kind
        return self.lookup_table.lookup(key)

    # ------------------------------------------------------------------
    # Fault injection and health (see repro.faults)
    # ------------------------------------------------------------------

    def fail(self, mode: str = FAULT_CRASH) -> None:
        """Put the engine into a failed state.

        ``"crash"`` models a dead tile: queued and in-service messages are
        lost (counted in :attr:`blackholed`) and all future deliveries are
        sunk, but the tile's router keeps switching -- the mesh stays
        lossless for through-traffic.  ``"stall"`` models a wedged engine:
        deliveries are still accepted but nothing is ever served.
        """
        if mode not in (FAULT_CRASH, FAULT_STALL):
            raise ValueError(
                f"{self.name}: fault mode must be 'crash' or 'stall', "
                f"got {mode!r}"
            )
        self.fault_mode = mode
        if mode == FAULT_CRASH:
            lost = len(self.queue)
            self.queue.drain()
            self.blackholed.add(lost)
            if self.notify_space is not None:
                # The router may hold refused messages; let it deliver
                # them so they are sunk (and counted) rather than wedged.
                self.notify_space()

    def recover(self) -> None:
        """Clear any injected fault and resume service."""
        self.fault_mode = None
        self.slowdown = 1.0
        self._try_start()
        if self.notify_space is not None:
            self.notify_space()

    @property
    def failed(self) -> bool:
        return self.fault_mode is not None

    def scaled_service_time_ps(self, packet: Packet) -> int:
        """Service time with any injected slowdown factor applied."""
        delay = self.service_time_ps(packet)
        if self.slowdown != 1.0:
            delay = int(delay * self.slowdown)
        return delay

    def _echo_heartbeat(self, packet: Packet) -> bool:
        """Answer a health-monitor probe; True when ``packet`` was one.

        Probes ride the mesh and the engine's own scheduling queue like
        any other message, so the echo proves the whole tile -- router,
        PIFO, service loop -- is live, not just that the object exists.
        """
        if packet.kind is not MessageKind.CONTROL:
            return False
        reply_to = packet.meta.annotations.get("hb_reply_to")
        if reply_to is None:
            return False
        echo = Packet(b"", MessageKind.CONTROL)
        echo.meta.annotations["hb_echo_from"] = self.address
        echo.meta.annotations["hb_seq"] = packet.meta.annotations.get("hb_seq")
        self.send(echo, int(reply_to))
        return True

    # ------------------------------------------------------------------
    # Subclass interface
    # ------------------------------------------------------------------

    def service_time_ps(self, packet: Packet) -> int:
        """How long this engine works on ``packet``.  Default: one cycle."""
        return self.clock.cycles_to_ps(1)

    def handle(self, packet: Packet) -> List[EngineOutput]:
        """Transform a packet; return output packets with destinations.

        The default is a pure pass-through that follows the chain.
        """
        return [(packet, None)]

    def service_many(
        self, packets: List[Packet]
    ) -> Optional[List[List[EngineOutput]]]:
        """Batched :meth:`handle` for the frame-train lane, or None.

        Engines that opt into batched execution override this to apply
        :meth:`handle`'s per-packet effects (annotations, counters,
        payload transforms) for the whole batch -- vectorized where the
        work allows (:mod:`repro.packet.vectorized`) -- returning one
        output list per packet, in order.  The contract, enforced by the
        batch-equivalence suite:

        * effects must be bit-identical to calling :meth:`handle` on
          each packet in order (including memo/cache bookkeeping);
        * no reads of ``self.now``, no scheduling, no RNG -- the lane
          calls this once for service windows it computed arithmetically
          (``service_time_ps`` must likewise be pure for such engines);
        * returning None declines the batch *before any mutation*; the
          lane then falls back to scalar service.

        The default declines everything (identity-checked by the lane,
        so plain engines never even reach a call).
        """
        return None

    def terminal(self, packet: Packet) -> None:
        """Called when a packet has nowhere further to go.

        The default treats it as a configuration error -- every reference
        NIC installs default routes; engines like the Ethernet port
        override this to transmit externally.
        """
        raise RuntimeError(
            f"{self.name}: packet {packet!r} has an exhausted chain and no "
            "default route; check the lookup-table programming"
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def busy(self) -> bool:
        return self._busy_lanes > 0

    @property
    def backlog(self) -> int:
        return len(self.queue)
