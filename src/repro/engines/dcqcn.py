"""DCQCN-style congestion control as PANIC engines (Table 1: DCQCN,
"Infrastructure CPU-bypass Network").

Three cooperating pieces implement the classic ECN-based control loop
from Zhu et al. (SIGCOMM 2015), simplified but structurally faithful:

* :class:`EcnMarkerEngine` (congestion point) -- watches a downstream
  engine's queue (typically the DMA engine) and RED-marks ECN-capable
  packets CE between ``k_min`` and ``k_max`` queue depth;
* :class:`CnpResponder` (notification point) -- host-side helper that,
  on receiving a CE-marked packet, emits a Congestion Notification
  Packet (CNP) back toward the sender (rate-limited per flow);
* :class:`DcqcnRateController` + :class:`DcqcnEngine` (reaction point)
  -- the sender-side algorithm: multiplicative decrease on CNP, alpha
  EWMA, timer-driven fast recovery / additive increase, actuating a
  :class:`~repro.engines.ratelimit.RateLimiterEngine` bucket.

The controller is pure (no simulator) so the algorithm is unit-testable;
the engine wrapper wires it to simulated time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.engines.base import Engine, EngineOutput
from repro.packet.builder import build_udp_frame, parse_frame
from repro.packet.headers import EthernetHeader, HeaderError, Ipv4Header
from repro.packet.packet import Direction, MessageKind, Packet
from repro.sim.clock import MHZ, US
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.sim.stats import Counter

#: UDP port carrying congestion notification packets.
CNP_UDP_PORT = 4791  # RoCEv2's port, fittingly

#: IPv4 ECN codepoints.
ECN_NOT_ECT = 0
ECN_ECT1 = 1
ECN_ECT0 = 2
ECN_CE = 3


def build_cnp(flow_id: int, *, src_mac, dst_mac, src_ip, dst_ip) -> bytes:
    """A minimal CNP frame: the flow id rides in the payload."""
    return build_udp_frame(
        src_mac=src_mac,
        dst_mac=dst_mac,
        src_ip=src_ip,
        dst_ip=dst_ip,
        src_port=CNP_UDP_PORT,
        dst_port=CNP_UDP_PORT,
        payload=flow_id.to_bytes(4, "big"),
    )


def parse_cnp(data: bytes) -> Optional[int]:
    """Return the CNP's flow id, or None if this is not a CNP."""
    try:
        frame = parse_frame(data)
    except HeaderError:
        return None
    if frame.udp is None or frame.udp.dst_port != CNP_UDP_PORT:
        return None
    if len(frame.payload) < 4:
        return None
    return int.from_bytes(frame.payload[:4], "big")


class EcnMarkerEngine(Engine):
    """RED-style CE marking driven by a watched engine's queue depth."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        k_min: int = 5,
        k_max: int = 20,
        p_max: float = 1.0,
        freq_hz: float = 500 * MHZ,
        seed: int = 0,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz, **engine_kwargs)
        if not 0 <= k_min <= k_max:
            raise ValueError(f"{name}: need 0 <= k_min <= k_max")
        if not 0 < p_max <= 1:
            raise ValueError(f"{name}: p_max must be in (0, 1]")
        self.k_min = k_min
        self.k_max = k_max
        self.p_max = p_max
        self.rng = SeededRng(seed)
        #: The engine whose queue this marker watches (set by the user);
        #: defaults to watching its own queue.
        self.watch_engine: Optional[Engine] = None
        self.marked = Counter(f"{name}.marked")
        self.eligible = Counter(f"{name}.eligible")

    def _mark_probability(self) -> float:
        depth = (self.watch_engine or self).backlog
        if depth <= self.k_min:
            return 0.0
        if depth >= self.k_max:
            return self.p_max
        return self.p_max * (depth - self.k_min) / (self.k_max - self.k_min)

    def handle(self, packet: Packet) -> List[EngineOutput]:
        try:
            eth, rest = EthernetHeader.unpack(packet.data)
            ipv4, after = Ipv4Header.unpack(rest)
        except HeaderError:
            return [(packet, None)]
        if ipv4.ecn not in (ECN_ECT0, ECN_ECT1):
            return [(packet, None)]  # not ECN-capable transport
        self.eligible.add()
        if self.rng.random() >= self._mark_probability():
            return [(packet, None)]
        self.marked.add()
        marked_ip = Ipv4Header(
            src=ipv4.src, dst=ipv4.dst, protocol=ipv4.protocol,
            total_length=ipv4.total_length, ttl=ipv4.ttl,
            dscp=ipv4.dscp, ecn=ECN_CE,
            identification=ipv4.identification,
        )
        out = Packet(eth.pack() + marked_ip.pack() + after, packet.kind,
                     packet.meta)
        out.panic = packet.panic
        return [(out, None)]


@dataclass
class _FlowState:
    current_bps: float
    target_bps: float
    alpha: float = 1.0
    last_cnp_ps: int = -1


class DcqcnRateController:
    """The DCQCN reaction-point algorithm (pure, time passed in).

    On CNP: target <- current; current <- current * (1 - alpha/2);
    alpha <- (1-g)*alpha + g.  On each increase-timer tick without CNPs:
    alpha <- (1-g)*alpha; current <- (current + target)/2 (fast
    recovery), plus an additive step once recovered.
    """

    def __init__(
        self,
        line_rate_bps: float,
        g: float = 1 / 16,
        min_rate_bps: float = 1e6,
        additive_step_bps: float = 5e8,
    ):
        if line_rate_bps <= 0:
            raise ValueError("line rate must be positive")
        if not 0 < g < 1:
            raise ValueError("g must be in (0, 1)")
        self.line_rate_bps = line_rate_bps
        self.g = g
        self.min_rate_bps = min_rate_bps
        self.additive_step_bps = additive_step_bps
        self._flows: Dict[int, _FlowState] = {}
        self.cnps_processed = 0

    def flow(self, flow_id: int) -> _FlowState:
        state = self._flows.get(flow_id)
        if state is None:
            state = _FlowState(self.line_rate_bps, self.line_rate_bps)
            self._flows[flow_id] = state
        return state

    def rate_bps(self, flow_id: int) -> float:
        return self.flow(flow_id).current_bps

    def on_cnp(self, flow_id: int, now_ps: int) -> float:
        state = self.flow(flow_id)
        state.target_bps = state.current_bps
        state.current_bps = max(
            self.min_rate_bps,
            state.current_bps * (1 - state.alpha / 2),
        )
        state.alpha = (1 - self.g) * state.alpha + self.g
        state.last_cnp_ps = now_ps
        self.cnps_processed += 1
        return state.current_bps

    def on_timer(self, flow_id: int, now_ps: int) -> float:
        state = self.flow(flow_id)
        state.alpha = (1 - self.g) * state.alpha
        # The 0.1% tolerance stops fast recovery from asymptoting forever
        # below the target in floating point.
        if state.current_bps < state.target_bps * 0.999:
            # Fast recovery toward the pre-cut rate.
            state.current_bps = (state.current_bps + state.target_bps) / 2
        else:
            # Additive probing beyond it.
            state.target_bps = min(
                self.line_rate_bps, state.target_bps + self.additive_step_bps
            )
            state.current_bps = min(
                self.line_rate_bps,
                (state.current_bps + state.target_bps) / 2,
            )
        return state.current_bps


class DcqcnEngine(Engine):
    """Sender-side reaction point: consumes CNPs, retunes the limiter."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        line_rate_bps: float = 100e9,
        timer_period_ps: int = 50 * US,
        freq_hz: float = 500 * MHZ,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz, **engine_kwargs)
        self.controller = DcqcnRateController(line_rate_bps)
        self.timer_period_ps = timer_period_ps
        #: The RateLimiterEngine this controller actuates.
        self.limiter = None
        self.cnps = Counter(f"{name}.cnps")
        self._timer_running: Dict[int, bool] = {}

    def attach_limiter(self, limiter) -> None:
        self.limiter = limiter

    def handle(self, packet: Packet) -> List[EngineOutput]:
        flow_id = parse_cnp(packet.data)
        if flow_id is None:
            return [(packet, None)]
        self.cnps.add()
        new_rate = self.controller.on_cnp(flow_id, self.now)
        self._apply(flow_id, new_rate)
        if not self._timer_running.get(flow_id):
            self._timer_running[flow_id] = True
            self.schedule(self.timer_period_ps, self._tick, flow_id)
        return []  # CNPs terminate here

    def _tick(self, flow_id: int) -> None:
        new_rate = self.controller.on_timer(flow_id, self.now)
        self._apply(flow_id, new_rate)
        if new_rate < self.controller.line_rate_bps * 0.999:
            self.schedule(self.timer_period_ps, self._tick, flow_id)
        else:
            self._timer_running[flow_id] = False

    def _apply(self, flow_id: int, rate_bps: float) -> None:
        if self.limiter is not None:
            self.limiter.set_rate_update(flow_id, rate_bps)


class CnpResponder:
    """Host-side notification point: CE in, CNP out (rate-limited)."""

    def __init__(self, host, min_gap_ps: int = 10 * US):
        self.host = host
        self.min_gap_ps = min_gap_ps
        self._last_cnp_ps: Dict[int, int] = {}
        self.cnps_sent = Counter("cnp_responder.sent")
        self._downstream = host.software_handler
        host.software_handler = self._on_packet

    def _on_packet(self, packet: Packet, queue: int) -> None:
        if self._downstream is not None:
            self._downstream(packet, queue)
        try:
            frame = parse_frame(packet.data)
        except HeaderError:
            return
        if frame.ipv4 is None or frame.ipv4.ecn != ECN_CE:
            return
        flow_id = packet.meta.tenant if packet.meta.tenant is not None else 0
        last = self._last_cnp_ps.get(flow_id, -(10**18))
        if self.host.now - last < self.min_gap_ps:
            return
        self._last_cnp_ps[flow_id] = self.host.now
        cnp = build_cnp(
            flow_id,
            src_mac=frame.eth.dst,
            dst_mac=frame.eth.src,
            src_ip=frame.ipv4.dst,
            dst_ip=frame.ipv4.src,
        )
        self.cnps_sent.add()
        self.host.enqueue_tx(cnp, queue=0)
