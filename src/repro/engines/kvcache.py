"""The on-NIC key-value cache engine (the paper's section 2.2 example).

"The NIC can cache the location of values for hot keys and use DMA to
directly return replies, completely bypassing the CPU.  However, only
requests that are cached on the NIC should be processed in this way."

The engine keeps an LRU cache in its local SRAM.  GET hits synthesize a
:class:`~repro.packet.kv.KvResponse` frame on the spot and send it back
out (the response re-enters the RMT pipeline for egress routing, exactly
as the section 3.2 walk-through describes).  GET misses, SETs and
DELETEs continue along their chain toward the DMA engine and host; SETs
write through into the cache when the key is already hot, and DELETEs
invalidate.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import List, Optional, Tuple

from repro.engines.base import Engine, EngineOutput
from repro.packet.builder import build_udp_frame, parse_frame
from repro.packet.headers import HeaderError
from repro.packet.kv import KvOpcode, KvRequest, KvResponse, KvStatus, KV_UDP_PORT
from repro.packet.packet import Direction, MessageKind, Packet
from repro.sim.clock import MHZ
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter


class KvCacheEngine(Engine):
    """An LRU key-value cache living in NIC SRAM."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        capacity_bytes: int = 1 << 20,
        lookup_cycles: int = 8,
        cycles_per_value_byte: float = 0.125,
        freq_hz: float = 500 * MHZ,
        queue_capacity: Optional[int] = None,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz,
                         queue_capacity=queue_capacity, **engine_kwargs)
        if capacity_bytes <= 0:
            raise ValueError(f"{name}: capacity must be positive")
        self.capacity_bytes = capacity_bytes
        self.lookup_cycles = lookup_cycles
        self.cycles_per_value_byte = cycles_per_value_byte
        self._cache: "OrderedDict[bytes, bytes]" = OrderedDict()
        self._used_bytes = 0
        self.hits = Counter(f"{name}.hits")
        self.misses = Counter(f"{name}.misses")
        self.evictions = Counter(f"{name}.evictions")
        self.writethroughs = Counter(f"{name}.writethroughs")

    # ------------------------------------------------------------------
    # Cache mechanics
    # ------------------------------------------------------------------

    @staticmethod
    def _entry_bytes(key: bytes, value: bytes) -> int:
        return len(key) + len(value)

    def cache_get(self, key: bytes) -> Optional[bytes]:
        value = self._cache.get(key)
        if value is not None:
            self._cache.move_to_end(key)
        return value

    def cache_put(self, key: bytes, value: bytes) -> None:
        """Insert/update, evicting LRU entries to respect capacity."""
        entry = self._entry_bytes(key, value)
        if entry > self.capacity_bytes:
            raise ValueError(
                f"{self.name}: entry of {entry} bytes exceeds cache capacity"
            )
        if key in self._cache:
            self._used_bytes -= self._entry_bytes(key, self._cache.pop(key))
        while self._used_bytes + entry > self.capacity_bytes:
            old_key, old_value = self._cache.popitem(last=False)
            self._used_bytes -= self._entry_bytes(old_key, old_value)
            self.evictions.add()
        self._cache[key] = value
        self._used_bytes += entry

    def cache_delete(self, key: bytes) -> bool:
        value = self._cache.pop(key, None)
        if value is None:
            return False
        self._used_bytes -= self._entry_bytes(key, value)
        return True

    @property
    def used_bytes(self) -> int:
        return self._used_bytes

    @property
    def entries(self) -> int:
        return len(self._cache)

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def service_time_ps(self, packet: Packet) -> int:
        value_bytes = packet.meta.annotations.get("kv_value_bytes", 0)
        cycles = self.lookup_cycles + self.cycles_per_value_byte * value_bytes
        return self.clock.cycles_to_ps(cycles)

    # ------------------------------------------------------------------
    # Data plane
    # ------------------------------------------------------------------

    def handle(self, packet: Packet) -> List[EngineOutput]:
        parsed_request = self._parse_request(packet)
        if parsed_request is None:
            return [(packet, None)]
        request, frame = parsed_request
        if request.opcode == KvOpcode.GET:
            value = self.cache_get(request.key)
            if value is not None:
                self.hits.add()
                response = self._respond(packet, frame, request, value)
                # The miss path (continuing the chain toward the host) is
                # abandoned: the cache answered.
                return [(response, None)]
            self.misses.add()
            return [(packet, None)]
        if request.opcode == KvOpcode.SET:
            if request.key in self._cache:
                self.cache_put(request.key, request.value)
                self.writethroughs.add()
            return [(packet, None)]
        if request.opcode == KvOpcode.DELETE:
            self.cache_delete(request.key)
            return [(packet, None)]
        return [(packet, None)]

    def _parse_request(self, packet: Packet):
        if packet.kind != MessageKind.ETHERNET:
            return None
        try:
            frame = parse_frame(packet.data)
        except HeaderError:
            return None
        if not frame.is_kv or not frame.payload:
            return None
        if frame.payload[0] == KvOpcode.RESPONSE:
            return None
        try:
            request = frame.kv_request()
        except HeaderError:
            return None
        return request, frame

    def _respond(self, packet: Packet, frame, request: KvRequest, value: bytes) -> Packet:
        response = KvResponse(KvStatus.OK, request.tenant, request.request_id, value)
        assert frame.ipv4 is not None and frame.udp is not None
        data = build_udp_frame(
            src_mac=frame.eth.dst,
            dst_mac=frame.eth.src,
            src_ip=frame.ipv4.dst,
            dst_ip=frame.ipv4.src,
            src_port=KV_UDP_PORT,
            dst_port=frame.udp.src_port,
            payload=response.pack(),
            identification=request.request_id & 0xFFFF,
        )
        out = Packet(data, MessageKind.ETHERNET)
        out.meta.direction = Direction.TX
        out.meta.tenant = request.tenant
        out.meta.nic_arrival_ps = packet.meta.nic_arrival_ps
        out.meta.created_ps = packet.meta.created_ps
        out.meta.egress_port = packet.meta.ingress_port
        out.meta.annotations["cache_hit"] = True
        out.meta.annotations["kv_value_bytes"] = len(value)
        out.meta.annotations["request_ctx"] = packet.meta.annotations.get("request_ctx")
        # No chain: the lookup-table default (the RMT pipeline) will give
        # the response an egress chain, as in the paper's walk-through.
        return out
