"""The DMA engine: the tile that talks to host memory.

Section 3.1: "PANIC uses a DMA engine and PCIe engine to interface with
the main processor.  These engines are attached to the logical switch in
the same way as the offload engines."  Section 3.2: "the DMA engine has
variable performance and may become a bottleneck" due to host memory
contention -- the ``host.memory_latency_ps()`` hook models exactly that.

Message kinds handled (all are just packets on the unified network):

* ``ETHERNET`` (RX direction) -- write the frame into a host receive ring,
  emit a completion toward the PCIe engine (for interrupt generation).
* ``DOORBELL`` -- a transmit doorbell: fetch the next TX descriptor/frame
  from the host ring and inject it toward the RMT pipeline.
* ``DMA_READ`` -- read host memory on behalf of another engine (e.g. the
  RDMA engine); reply with a ``DMA_COMPLETION`` carrying the data.
* ``DMA_WRITE`` -- write host memory (e.g. appending a SET to a log).
"""

from __future__ import annotations

from typing import List, Optional

from repro.engines.base import Engine, EngineOutput
from repro.packet.packet import Direction, MessageKind, Packet, PacketMetadata
from repro.sim.clock import MHZ, SEC
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter

#: PCIe 3.0 x16 usable bandwidth, roughly (the paper's Figure 3c shows
#: "PCIe x16").
DEFAULT_PCIE_BPS = 120e9

#: Fixed descriptor-processing overhead per DMA operation.
DEFAULT_DESCRIPTOR_CYCLES = 16


class DmaEngine(Engine):
    """Moves data between the NIC and host memory over PCIe."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        pcie_bps: float = DEFAULT_PCIE_BPS,
        descriptor_cycles: int = DEFAULT_DESCRIPTOR_CYCLES,
        freq_hz: float = 500 * MHZ,
        queue_capacity: Optional[int] = None,
        **engine_kwargs,
    ):
        super().__init__(sim, name, freq_hz=freq_hz,
                         queue_capacity=queue_capacity, **engine_kwargs)
        if pcie_bps <= 0:
            raise ValueError(f"{name}: PCIe bandwidth must be positive")
        self.pcie_bps = pcie_bps
        self.descriptor_cycles = descriptor_cycles
        self.host = None
        #: Where completions go (the PCIe engine); set by the NIC builder.
        self.pcie_addr: Optional[int] = None
        self.rx_writes = Counter(f"{name}.rx_writes")
        self.tx_fetches = Counter(f"{name}.tx_fetches")
        self.reads = Counter(f"{name}.reads")
        self.writes = Counter(f"{name}.writes")

    def attach_host(self, host) -> None:
        """Connect the host model (see :class:`repro.core.host.Host`)."""
        self.host = host

    # ------------------------------------------------------------------
    # Cost model
    # ------------------------------------------------------------------

    def service_time_ps(self, packet: Packet) -> int:
        if self.host is None:
            raise RuntimeError(f"{self.name}: no host attached")
        transfer_bytes = self._transfer_bytes(packet)
        wire = int(transfer_bytes * 8 * SEC / self.pcie_bps)
        overhead = self.clock.cycles_to_ps(self.descriptor_cycles)
        # Host memory latency varies with contention (section 3.2).
        return overhead + wire + self.host.memory_latency_ps()

    def _transfer_bytes(self, packet: Packet) -> int:
        if packet.kind == MessageKind.ETHERNET:
            return packet.frame_bytes
        if packet.kind in (MessageKind.DMA_READ, MessageKind.DMA_WRITE):
            return int(packet.meta.annotations.get("dma_bytes", packet.frame_bytes))
        return 0  # doorbells and completions are descriptor-only

    # ------------------------------------------------------------------
    # Behaviour
    # ------------------------------------------------------------------

    def handle(self, packet: Packet) -> List[EngineOutput]:
        if self.host is None:
            raise RuntimeError(f"{self.name}: no host attached")
        kind = packet.kind
        if kind == MessageKind.ETHERNET and packet.meta.direction == Direction.RX:
            return self._handle_rx_write(packet)
        if kind == MessageKind.DOORBELL:
            return self._handle_tx_doorbell(packet)
        if kind == MessageKind.DMA_READ:
            return self._handle_read(packet)
        if kind == MessageKind.DMA_WRITE:
            return self._handle_write(packet)
        # Anything else (e.g. a TX frame routed here by mistake) follows
        # its chain -- the default engine behaviour.
        return [(packet, None)]

    def _handle_rx_write(self, packet: Packet) -> List[EngineOutput]:
        queue = int(packet.meta.annotations.get("rx_queue", 0))
        handle = packet.meta.annotations.pop("pbuf_handle", None)
        if handle is not None and self.payload_buffer is not None:
            # The payload has been DMA'd to host memory: free the slot.
            self.payload_buffer.release(handle)
            packet.meta.annotations.pop("noc_bits", None)
        self.host.write_rx(packet, queue)
        self.rx_writes.add()
        completion = self._completion_for(packet, {"rx_queue": queue})
        if self.pcie_addr is None:
            return []
        return [(completion, self.pcie_addr)]

    def _handle_tx_doorbell(self, packet: Packet) -> List[EngineOutput]:
        queue = int(packet.meta.annotations.get("tx_queue", 0))
        outputs: List[EngineOutput] = []
        frame = self.host.pop_tx(queue)
        while frame is not None:
            self.tx_fetches.add()
            tx_packet = Packet(frame, MessageKind.ETHERNET)
            tx_packet.meta.direction = Direction.TX
            tx_packet.meta.nic_arrival_ps = self.now
            tx_packet.meta.annotations["tx_queue"] = queue
            # No chain yet: the lookup-table default routes TX frames to
            # the RMT pipeline for egress classification.
            outputs.append((tx_packet, None))
            frame = self.host.pop_tx(queue)
        return outputs

    def _handle_read(self, packet: Packet) -> List[EngineOutput]:
        key = packet.meta.annotations.get("dma_key")
        data = self.host.memory_read(key)
        self.reads.add()
        reply_to = packet.meta.annotations.get("reply_to")
        completion = self._completion_for(packet, {"dma_data": data})
        if reply_to is None:
            return []
        return [(completion, int(reply_to))]

    def _handle_write(self, packet: Packet) -> List[EngineOutput]:
        key = packet.meta.annotations.get("dma_key")
        data = packet.meta.annotations.get("dma_data", packet.data)
        self.host.memory_write(key, data)
        self.writes.add()
        reply_to = packet.meta.annotations.get("reply_to")
        if reply_to is None:
            return []
        completion = self._completion_for(packet, {})
        return [(completion, int(reply_to))]

    def _completion_for(self, request: Packet, annotations: dict) -> Packet:
        completion = Packet(b"", MessageKind.DMA_COMPLETION)
        completion.meta.direction = Direction.INTERNAL
        completion.meta.tenant = request.meta.tenant
        completion.meta.annotations.update(annotations)
        completion.meta.annotations["completes"] = request.packet_id
        # Carry the request's context so responders can correlate.
        for key in ("request_ctx", "rx_queue", "kv_request"):
            if key in request.meta.annotations:
                completion.meta.annotations.setdefault(
                    key, request.meta.annotations[key]
                )
        if request.panic is not None:
            completion.panic = request.panic.copy()
            # Completions inherit the original slack so the scheduler can
            # keep prioritising the dependent accesses (section 3.2).
        return completion
