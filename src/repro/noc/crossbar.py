"""A single-crossbar interconnect, for the mesh-vs-crossbar ablation.

Section 3.1.2 motivates the mesh by noting that "due to physical
constraints (e.g., wire length), it is not feasible to build a single large
switch ... when there are a large number of engines".  A behavioural
simulation cannot show wire length, so the crossbar model exposes the
*architectural* consequence instead: a crossbar's aggregate bandwidth is
fixed by its port count and per-port width, while a mesh's bisection scales
with the topology; and a large crossbar's clock frequency degrades with
port count (the ``freq_derating`` knob models the wire-length penalty).

The crossbar presents the same ``bind`` / ``NocPort`` interface as
:class:`~repro.noc.mesh.Mesh`, so NICs can be built over either fabric.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.noc.channel import Channel
from repro.noc.message import NocMessage
from repro.noc.router import Endpoint
from repro.packet.packet import Packet
from repro.sim.clock import MHZ, Clock
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter


class _CrossbarPort:
    """Endpoint-side handle, mirroring :class:`repro.noc.mesh.NocPort`."""

    def __init__(self, crossbar: "Crossbar", endpoint: Endpoint):
        self._crossbar = crossbar
        self._endpoint = endpoint
        self.injected = Counter(f"xbar.port{endpoint.address}.injected")

    @property
    def address(self) -> int:
        return self._endpoint.address

    def send(self, packet: Packet, dest_addr: int) -> NocMessage:
        message = NocMessage(
            packet=packet,
            dest_addr=dest_addr,
            src_addr=self._endpoint.address,
            inject_ps=self._crossbar.sim.now,
        )
        self.injected.add()
        self._crossbar.route(message)
        return message

    def send_message(self, message: NocMessage) -> None:
        self._crossbar.route(message)

    @property
    def backlog(self) -> int:
        return 0


class Crossbar:
    """A non-blocking crossbar with per-output serialization.

    Each output port is a :class:`Channel` clocked at a frequency derated
    by the port count, modelling the wire-length penalty of large flat
    switches: ``freq = base_freq / (1 + derating * (ports - 1))``.
    """

    def __init__(
        self,
        sim: Simulator,
        ports: int,
        channel_bits: int = 64,
        freq_hz: float = 500 * MHZ,
        freq_derating: float = 0.05,
        credits: int = 8,
        name: str = "xbar",
    ):
        if ports < 1:
            raise ValueError(f"crossbar needs at least one port, got {ports}")
        self.sim = sim
        self.name = name
        self.ports = ports
        self.channel_bits = channel_bits
        effective = freq_hz / (1.0 + freq_derating * max(0, ports - 1))
        self.clock = Clock(effective)
        self.credits = credits
        self._endpoints: Dict[int, Endpoint] = {}
        self._outputs: Dict[int, Channel] = {}
        self._next_address = 0
        self.routed = Counter(f"{name}.routed")

    def bind(self, endpoint: Endpoint) -> _CrossbarPort:
        """Attach an endpoint; addresses are assigned sequentially."""
        if self._next_address >= self.ports:
            raise ValueError(f"crossbar has only {self.ports} ports")
        address = self._next_address
        self._next_address += 1
        endpoint.address = address
        self._endpoints[address] = endpoint
        self._outputs[address] = Channel(
            self.sim,
            f"{self.name}.out{address}",
            self.channel_bits,
            self.clock,
            self._deliver,
            credits=self.credits,
        )
        return _CrossbarPort(self, endpoint)

    def route(self, message: NocMessage) -> None:
        output = self._outputs.get(message.dest_addr)
        if output is None:
            raise ValueError(
                f"{self.name}: no endpoint at address {message.dest_addr}"
            )
        self.routed.add()
        output.submit(message)

    def _deliver(self, message: NocMessage, channel: Channel) -> None:
        endpoint = self._endpoints[message.dest_addr]
        channel.release_credit()
        endpoint.receive(message)

    def endpoint_at(self, address: int) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise ValueError(f"no endpoint bound at address {address}") from None

    @property
    def in_flight(self) -> int:
        return sum(channel.queue_len for channel in self._outputs.values())
