"""The on-chip network (NoC) substrate.

PANIC connects its engines with a lossless multi-hop 2D mesh (section
3.1.2): every engine contains a router, routers connect to their neighbours,
each hop adds one cycle of latency, and channels have a configurable bit
width that determines serialization time.

This package provides:

* :class:`NocMessage` -- the envelope that carries a packet between engines.
* :class:`Channel` -- a one-way link with serialization delay and
  credit-based backpressure (losslessness).
* :class:`Router` -- a 5-port input-queued router with dimension-ordered
  (XY) routing.
* :class:`Mesh` -- builds a ``width x height`` mesh of routers and binds
  endpoints to them.
* :class:`Crossbar` -- a single-switch alternative used by the "mesh vs
  crossbar" ablation.
* :mod:`repro.noc.analysis` -- the closed-form mesh model behind Table 3.
"""

from repro.noc.message import NocMessage
from repro.noc.channel import Channel
from repro.noc.router import Router, Endpoint
from repro.noc.mesh import Mesh, MeshConfig
from repro.noc.crossbar import Crossbar
from repro.noc.analysis import MeshAnalysis, table3_rows, Table3Row

__all__ = [
    "Channel",
    "Crossbar",
    "Endpoint",
    "Mesh",
    "MeshAnalysis",
    "MeshConfig",
    "NocMessage",
    "Router",
    "Table3Row",
    "table3_rows",
]
