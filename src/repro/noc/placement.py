"""Engine placement optimization (section 6: "How should different
engines be placed in this topology?").

Given a traffic matrix between engines (messages/sec or any relative
weight), placement quality is the traffic-weighted mean Manhattan
distance -- each hop costs a router cycle plus serialization, so
expected hops is the right analytic objective for a 2D mesh with XY
routing.

Two optimizers are provided:

* :func:`greedy_placement` -- heaviest-communicating pairs first, placed
  as close together as possible; fast and deterministic.
* :func:`annealed_placement` -- simulated annealing over tile swaps with
  a seeded RNG; slower, usually a few percent better.

Both honour *fixed* placements (Ethernet MACs and DMA/PCIe sit on mesh
edges because the external wires attach there; Figure 3c).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional, Tuple

from repro.sim.rng import SeededRng

Coord = Tuple[int, int]
#: A traffic matrix: (src_engine, dst_engine) -> weight.
TrafficMatrix = Dict[Tuple[str, str], float]
#: A placement: engine name -> tile coordinate.
Placement = Dict[str, Coord]


def manhattan(a: Coord, b: Coord) -> int:
    return abs(a[0] - b[0]) + abs(a[1] - b[1])


def expected_hops(placement: Placement, traffic: TrafficMatrix) -> float:
    """Traffic-weighted mean hop distance of a placement."""
    total_weight = 0.0
    total_cost = 0.0
    for (src, dst), weight in traffic.items():
        if weight < 0:
            raise ValueError(f"negative traffic weight for {src}->{dst}")
        if src not in placement or dst not in placement:
            raise KeyError(f"traffic names unplaced engine: {src}->{dst}")
        total_weight += weight
        total_cost += weight * manhattan(placement[src], placement[dst])
    if total_weight == 0:
        return 0.0
    return total_cost / total_weight


def _all_tiles(width: int, height: int) -> List[Coord]:
    return [(x, y) for y in range(height) for x in range(width)]


def _validate(
    engines: Iterable[str],
    width: int,
    height: int,
    fixed: Optional[Placement],
) -> Tuple[List[str], Placement]:
    engines = list(engines)
    fixed = dict(fixed or {})
    if len(set(engines)) != len(engines):
        raise ValueError("duplicate engine names")
    tiles = set(_all_tiles(width, height))
    for name, coord in fixed.items():
        if coord not in tiles:
            raise ValueError(f"fixed tile {coord} outside {width}x{height} mesh")
        if name not in engines:
            raise ValueError(f"fixed placement for unknown engine {name!r}")
    if len(set(fixed.values())) != len(fixed):
        raise ValueError("fixed placements collide")
    if len(engines) > width * height:
        raise ValueError(
            f"{len(engines)} engines exceed {width}x{height} tiles"
        )
    return engines, fixed


def greedy_placement(
    engines: Iterable[str],
    traffic: TrafficMatrix,
    width: int,
    height: int,
    fixed: Optional[Placement] = None,
) -> Placement:
    """Place heavy-communicating engines adjacently, heaviest first."""
    engines, fixed = _validate(engines, width, height, fixed)
    placement: Placement = dict(fixed)
    free_tiles = [t for t in _all_tiles(width, height)
                  if t not in placement.values()]

    # Total traffic per engine, used to order placement.
    load: Dict[str, float] = {name: 0.0 for name in engines}
    for (src, dst), weight in traffic.items():
        load[src] = load.get(src, 0.0) + weight
        load[dst] = load.get(dst, 0.0) + weight

    def best_tile_for(name: str) -> Coord:
        """Tile minimizing weighted distance to already-placed peers."""
        best, best_cost = None, math.inf
        for tile in free_tiles:
            cost = 0.0
            for (src, dst), weight in traffic.items():
                if src == name and dst in placement:
                    cost += weight * manhattan(tile, placement[dst])
                elif dst == name and src in placement:
                    cost += weight * manhattan(tile, placement[src])
            if cost < best_cost:
                best, best_cost = tile, cost
        assert best is not None
        return best

    for name in sorted(engines, key=lambda n: -load.get(n, 0.0)):
        if name in placement:
            continue
        tile = best_tile_for(name)
        placement[name] = tile
        free_tiles.remove(tile)
    return placement


def annealed_placement(
    engines: Iterable[str],
    traffic: TrafficMatrix,
    width: int,
    height: int,
    fixed: Optional[Placement] = None,
    seed: int = 0,
    iterations: int = 4000,
    start_temp: float = 2.0,
) -> Placement:
    """Simulated annealing from the greedy seed, swapping movable tiles."""
    engines, fixed = _validate(engines, width, height, fixed)
    placement = greedy_placement(engines, traffic, width, height, fixed)
    movable = [name for name in engines if name not in fixed]
    if len(movable) < 2:
        return placement
    rng = SeededRng(seed)
    current_cost = expected_hops(placement, traffic)
    best = dict(placement)
    best_cost = current_cost
    for step in range(iterations):
        temperature = start_temp * (1.0 - step / iterations) + 1e-9
        a = rng.choice(movable)
        b = rng.choice(movable)
        if a == b:
            continue
        placement[a], placement[b] = placement[b], placement[a]
        cost = expected_hops(placement, traffic)
        delta = cost - current_cost
        if delta <= 0 or rng.random() < math.exp(-delta / temperature):
            current_cost = cost
            if cost < best_cost:
                best_cost = cost
                best = dict(placement)
        else:
            placement[a], placement[b] = placement[b], placement[a]
    return best


def reference_traffic(
    offloads: Iterable[str],
    ports: int = 1,
    cache_hit_rate: float = 0.5,
) -> TrafficMatrix:
    """The PANIC reference NIC's traffic matrix for placement studies.

    Every RX packet flows eth->rmt; chains fan out rmt->offload->...;
    RX terminates at the DMA engine; cache hits short-circuit back
    through the RMT to the port.  Weights are relative message rates.
    """
    traffic: TrafficMatrix = {}
    offloads = list(offloads)
    for i in range(ports):
        eth = f"eth{i}"
        traffic[(eth, "rmt")] = 1.0 / ports
        traffic[("rmt", eth)] = 1.0 / ports
    share = 1.0 / max(1, len(offloads))
    for name in offloads:
        traffic[("rmt", name)] = share
        traffic[(name, "dma")] = share * (1.0 - cache_hit_rate)
        traffic[(name, "rmt")] = share * cache_hit_rate
    traffic[("rmt", "dma")] = 0.5
    traffic[("dma", "pcie")] = 0.8
    traffic[("pcie", "dma")] = 0.2
    return traffic
