"""A shared on-NIC packet buffer for pointer-mode forwarding.

Section 6 asks: "Should entire packets always be passed from engines, or
are there times when it is better to instead pass pointers to packet
data located in a common packet buffer?"  This module implements the
pointer alternative so the question can be measured:

* payloads live in a central SRAM (:class:`PacketBuffer`) with a fixed
  byte capacity and a small number of access ports;
* NoC messages carry only a descriptor (chain header + pointer +
  metadata, :data:`DESCRIPTOR_BITS`), slashing mesh load;
* engines that touch payload bytes pay for buffer port access, which
  serializes per port -- the central buffer becomes the new contention
  point, which is exactly the trade-off the paper hints at.

Handles are reference-counted so multicast/clone flows cannot free a
payload that is still in use.
"""

from __future__ import annotations

import itertools
from typing import Dict, Optional

from repro.sim.clock import Clock, MHZ
from repro.sim.kernel import Component, Simulator
from repro.sim.stats import Counter

#: Bits a descriptor occupies on the on-chip network in pointer mode:
#: 16-byte chain header + pointer + lengths + metadata = 32 bytes.
DESCRIPTOR_BITS = 32 * 8

#: Annotation key marking a packet whose payload lives in the buffer.
PBUF_ANNOTATION = "pbuf_handle"


class PacketBufferError(RuntimeError):
    """Raised on capacity exhaustion or bad handles."""


class PacketBuffer(Component):
    """Central payload SRAM with port-contended access timing.

    Parameters
    ----------
    capacity_bytes:
        Total payload bytes the buffer can hold; allocation beyond this
        raises (section 4.3: "packet buffer space is a limited
        resource").
    ports:
        Concurrent access ports; an access occupies one port for
        ``bytes / port_bytes_per_cycle`` cycles.
    port_bytes_per_cycle:
        Width of each port (default 64 B/cycle = 256 Gbps at 500 MHz).
    """

    def __init__(
        self,
        sim: Simulator,
        name: str = "pktbuf",
        capacity_bytes: int = 2 << 20,
        ports: int = 2,
        port_bytes_per_cycle: int = 64,
        freq_hz: float = 500 * MHZ,
    ):
        super().__init__(sim, name)
        if capacity_bytes <= 0 or ports <= 0 or port_bytes_per_cycle <= 0:
            raise ValueError(f"{name}: capacity, ports and width must be positive")
        self.capacity_bytes = capacity_bytes
        self.port_bytes_per_cycle = port_bytes_per_cycle
        self.clock = Clock(freq_hz)
        self._port_busy_until = [0] * ports
        self._store: Dict[int, bytes] = {}
        self._refs: Dict[int, int] = {}
        self._used = 0
        self._handles = itertools.count(1)
        self.allocations = Counter(f"{name}.allocations")
        self.frees = Counter(f"{name}.frees")
        self.accesses = Counter(f"{name}.accesses")
        self.bytes_accessed = Counter(f"{name}.bytes")
        self.high_watermark = 0

    # ------------------------------------------------------------------
    # Allocation
    # ------------------------------------------------------------------

    def store(self, data: bytes) -> int:
        """Allocate a payload; returns its handle (refcount 1)."""
        if self._used + len(data) > self.capacity_bytes:
            raise PacketBufferError(
                f"{self.name}: out of buffer space "
                f"({self._used}+{len(data)} > {self.capacity_bytes})"
            )
        handle = next(self._handles)
        self._store[handle] = bytes(data)
        self._refs[handle] = 1
        self._used += len(data)
        self.high_watermark = max(self.high_watermark, self._used)
        self.allocations.add()
        return handle

    def retain(self, handle: int) -> None:
        """Bump the reference count (clone / multicast)."""
        self._refs[self._check(handle)] += 1

    def release(self, handle: int) -> None:
        """Drop a reference; frees the payload at zero."""
        handle = self._check(handle)
        self._refs[handle] -= 1
        if self._refs[handle] == 0:
            self._used -= len(self._store[handle])
            del self._store[handle]
            del self._refs[handle]
            self.frees.add()

    def read(self, handle: int) -> bytes:
        """Read the payload bytes (timing charged via access_delay_ps)."""
        return self._store[self._check(handle)]

    def rewrite(self, handle: int, data: bytes) -> None:
        """Replace a payload in place (an engine transformed it)."""
        handle = self._check(handle)
        old = self._store[handle]
        delta = len(data) - len(old)
        if self._used + delta > self.capacity_bytes:
            raise PacketBufferError(f"{self.name}: rewrite exceeds capacity")
        self._store[handle] = bytes(data)
        self._used += delta
        self.high_watermark = max(self.high_watermark, self._used)

    def _check(self, handle: int) -> int:
        if handle not in self._store:
            raise PacketBufferError(f"{self.name}: bad handle {handle}")
        return handle

    # ------------------------------------------------------------------
    # Timing
    # ------------------------------------------------------------------

    def access_delay_ps(self, nbytes: int) -> int:
        """Occupy the earliest-free port for an ``nbytes`` transfer.

        Returns the delay from *now* until the transfer completes,
        including any wait for a port -- the serialization that makes the
        shared buffer a potential bottleneck.
        """
        if nbytes < 0:
            raise ValueError(f"negative access size: {nbytes}")
        cycles = max(1, -(-nbytes // self.port_bytes_per_cycle))
        duration = self.clock.cycles_to_ps(cycles)
        port = min(range(len(self._port_busy_until)),
                   key=lambda i: self._port_busy_until[i])
        start = max(self.now, self._port_busy_until[port])
        self._port_busy_until[port] = start + duration
        self.accesses.add()
        self.bytes_accessed.add(nbytes)
        return (start + duration) - self.now

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        return self._used

    @property
    def live_handles(self) -> int:
        return len(self._store)
