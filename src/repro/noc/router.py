"""A 5-port input-queued mesh router with dimension-ordered routing.

Every PANIC engine contains a router (Figure 3a); routers connect to their
north/south/east/west neighbours and to the local engine.  Routing is XY
(dimension-ordered): a message first travels along the X axis to the
destination column, then along Y -- deadlock-free on a mesh without
virtual channels.

Input buffering is per-upstream-channel FIFO with credits (see
:mod:`repro.noc.channel`); the router moves head-of-line messages to output
channels whenever the output can accept, and stalls otherwise, propagating
backpressure toward the source.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Tuple

from repro.noc.channel import Channel
from repro.noc.message import NocMessage
from repro.sim.kernel import Component, Simulator
from repro.sim.stats import Counter


class Endpoint:
    """Anything attachable to a router's local port (engines, MACs, ...)."""

    #: NoC address; assigned when the endpoint is bound to a mesh.
    address: int = -1

    #: Set by the fabric at bind time: call it when the endpoint frees
    #: input space, so a router holding refused messages retries.
    notify_space = None

    def receive(self, message: NocMessage) -> None:
        """Accept a message delivered by the local router."""
        raise NotImplementedError

    def try_receive(self, message: NocMessage) -> bool:
        """Accept a message, or refuse it to exert backpressure.

        The default accepts unconditionally.  Endpoints with bounded
        lossless input (section 6's flow-control question) override this
        to return False when full; the router then parks the message in
        its input buffer, stalling the upstream credit loop, and retries
        when :attr:`notify_space` fires.
        """
        self.receive(message)
        return True


class Router(Component):
    """One tile's router.

    Parameters
    ----------
    sim, name:
        Kernel plumbing.
    x, y:
        Tile coordinates in the mesh.
    address:
        NoC address of the endpoint attached to this tile.
    coords_of:
        Resolver from any NoC address to tile coordinates (owned by the
        :class:`~repro.noc.mesh.Mesh`).
    """

    DIRECTIONS = ("east", "west", "north", "south")

    def __init__(
        self,
        sim: Simulator,
        name: str,
        x: int,
        y: int,
        address: int,
        coords_of: Callable[[int], Tuple[int, int]],
    ):
        super().__init__(sim, name)
        self.x = x
        self.y = y
        self.address = address
        self._coords_of = coords_of
        self.endpoint: Optional[Endpoint] = None
        self._out: Dict[str, Channel] = {}
        # One FIFO of (message, in_channel) per upstream channel.
        self._inputs: Dict[Channel, Deque[Tuple[NocMessage, Channel]]] = {}
        self._rr_order: List[Channel] = []
        self._pumping = False
        self._pump_again = False
        # Express flights currently cut-through-routed *through* this
        # router (see repro.noc.express); a foreign delivery while any are
        # reserved must de-speculate them before entering the queues.
        self._express_flights: list = []
        self._buffered = 0
        self.forwarded = Counter(f"{name}.forwarded")
        self.delivered = Counter(f"{name}.delivered")
        # Set by repro.telemetry; None-checked on the refusal path only.
        self._tracer = None

    # ------------------------------------------------------------------
    # Wiring (done by the Mesh builder)
    # ------------------------------------------------------------------

    def attach_output(self, direction: str, channel: Channel) -> None:
        if direction not in self.DIRECTIONS:
            raise ValueError(f"unknown direction {direction!r}")
        if direction in self._out:
            raise ValueError(f"{self.name}: output {direction} already wired")
        self._out[direction] = channel

    def attach_endpoint(self, endpoint: Endpoint) -> None:
        if self.endpoint is not None:
            raise ValueError(f"{self.name}: endpoint already attached")
        self.endpoint = endpoint

    def register_input(self, channel: Channel) -> None:
        """Declare an upstream channel (its deliveries arrive here)."""
        if channel in self._inputs:
            raise ValueError(f"{self.name}: input channel already registered")
        self._inputs[channel] = deque()
        self._rr_order.append(channel)

    # ------------------------------------------------------------------
    # Data path
    # ------------------------------------------------------------------

    def on_deliver(self, message: NocMessage, channel: Channel) -> None:
        """Channel delivery callback: buffer the message, then pump."""
        if self._express_flights:
            # Arriving traffic can contend with flights crossing this
            # router: commit crossings already past, de-speculate the rest.
            for flight in list(self._express_flights):
                flight.interfere(self)
        queue = self._inputs.get(channel)
        if queue is None:
            raise RuntimeError(f"{self.name}: delivery from unregistered channel")
        queue.append((message, channel))
        self._buffered += 1
        self.pump()

    def pump(self) -> None:
        """Move head-of-line messages onward while progress is possible.

        Re-entrant calls (a channel's ``on_drain`` firing while this router
        is already pumping) are coalesced into one extra pass.
        """
        if self._pumping:
            self._pump_again = True
            return
        self._pumping = True
        try:
            self._pump_once()
            while self._pump_again:
                self._pump_again = False
                self._pump_once()
        finally:
            self._pumping = False

    def _pump_once(self) -> None:
        # Scanning empty queues has no side effects, so an idle router
        # skips straight to the fairness rotation.
        if self._buffered:
            progress = True
            while progress:
                progress = False
                for channel in self._rr_order:
                    queue = self._inputs[channel]
                    if not queue:
                        continue
                    message, in_channel = queue[0]
                    if self._forward(message):
                        queue.popleft()
                        self._buffered -= 1
                        in_channel.release_credit()
                        progress = True
                if not self._buffered:
                    break
        # Round-robin fairness: rotate the service order.
        if self._rr_order:
            self._rr_order.append(self._rr_order.pop(0))

    def _forward(self, message: NocMessage) -> bool:
        """Try to move one message toward its destination.

        Returns True when the message was consumed (delivered locally or
        handed to an output channel).
        """
        if message.dest_addr == self.address:
            if self.endpoint is None:
                raise RuntimeError(
                    f"{self.name}: message for local endpoint but none attached"
                )
            if not self.endpoint.try_receive(message):
                # Endpoint full: hold the message here; its credit stays
                # consumed, backpressuring the upstream path.
                if self._tracer is not None:
                    ctx = message.packet.meta.annotations.get("__trace__")
                    if ctx is not None:
                        self._tracer.instant(
                            ctx, "refused", self.name, self.now,
                            (("dest", message.dest_addr),))
                return False
            self.delivered.value += 1
            return True
        direction = self.route(message.dest_addr)
        out = self._out.get(direction)
        if out is None:
            raise RuntimeError(
                f"{self.name}: no {direction} link toward address "
                f"{message.dest_addr}"
            )
        if not out.can_accept():
            return False
        self.forwarded.value += 1
        out.submit(message)
        return True

    def route(self, dest_addr: int) -> str:
        """Dimension-ordered (X first, then Y) next-hop decision."""
        dx, dy = self._coords_of(dest_addr)
        if dx > self.x:
            return "east"
        if dx < self.x:
            return "west"
        if dy > self.y:
            return "south"
        if dy < self.y:
            return "north"
        raise ValueError(
            f"{self.name}: routing to self (address {dest_addr}); "
            "local delivery should have been taken"
        )

    def _account_express_forward(self) -> None:
        """Retroactively apply one collapsed express forward.

        Replays exactly what an uncontended slow-path forward does to this
        router's observable state: one ``forwarded`` count, and the two
        round-robin rotations of the pump pass plus its ``on_drain``
        re-entry -- keeping future arbitration order bit-identical.
        """
        self.forwarded.value += 1
        rr = self._rr_order
        if rr:
            rr.append(rr.pop(0))
            rr.append(rr.pop(0))

    @property
    def buffered_messages(self) -> int:
        """Messages currently waiting in this router's input buffers."""
        return self._buffered
