"""The envelope that carries packets across the on-chip network."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.packet.packet import Packet

_message_ids = itertools.count()


@dataclass(slots=True)
class NocMessage:
    """A packet in flight between two engines.

    The envelope keeps NoC-level bookkeeping (source/destination engine
    addresses, injection time, hop count) separate from the packet itself,
    mirroring how a real design would wrap payloads in link-layer framing.
    """

    packet: Packet
    dest_addr: int
    src_addr: int
    inject_ps: int = 0
    hops: int = 0
    message_id: int = field(default_factory=lambda: next(_message_ids))

    def __post_init__(self) -> None:
        if self.dest_addr < 0 or self.src_addr < 0:
            raise ValueError(
                f"engine addresses must be non-negative "
                f"(src={self.src_addr}, dest={self.dest_addr})"
            )

    @property
    def bits(self) -> int:
        """Bits this message occupies on a channel (packet + chain header)."""
        return self.packet.chip_bits

    def __repr__(self) -> str:
        return (
            f"NocMessage(#{self.message_id}, {self.src_addr}->{self.dest_addr}, "
            f"{self.bits} bits, hops={self.hops})"
        )
