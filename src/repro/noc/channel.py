"""A one-way on-chip channel with serialization and credit backpressure.

The paper (section 3.1.2) requires the on-chip network to be *lossless*:
messages are never dropped in flight; drops happen only at the logical
scheduler.  We implement losslessness with credits: a channel may start a
transfer only while it holds a credit for a downstream buffer slot, and the
receiver returns the credit when the message leaves its input buffer.

Timing model (store-and-forward):

* serialization takes ``ceil(bits / width_bits)`` cycles of the channel
  clock -- a message occupies the wires for its whole length;
* the downstream router adds one cycle of latency per hop (section 3.1.2:
  "routers add one cycle of latency at each hop"), charged here as part of
  the delivery delay.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Optional, TYPE_CHECKING

from repro.sim.clock import Clock
from repro.sim.kernel import Component, Simulator
from repro.sim.stats import Counter

if TYPE_CHECKING:
    from repro.noc.express import ExpressFlight
    from repro.noc.message import NocMessage

#: Per-hop router pipeline latency in cycles (paper section 3.1.2).
ROUTER_HOP_CYCLES = 1


class Channel(Component):
    """A unidirectional link between two NoC components.

    Parameters
    ----------
    sim, name:
        Simulation kernel plumbing.
    width_bits:
        Channel bit width per cycle; the paper evaluates 64 and 128.
    clock:
        The NoC clock domain (500 MHz in the paper's reference numbers).
    deliver:
        Callback ``deliver(message, channel)`` invoked when a message has
        fully arrived downstream.
    credits:
        Number of downstream buffer slots, i.e. the credit pool.
    on_drain:
        Optional callback fired whenever a transfer *starts*, freeing the
        sender-side slot -- routers use it to resume stalled forwarding.
    """

    def __init__(
        self,
        sim: Simulator,
        name: str,
        width_bits: int,
        clock: Clock,
        deliver: Callable[["NocMessage", "Channel"], None],
        credits: int = 4,
        on_drain: Optional[Callable[[], None]] = None,
    ):
        super().__init__(sim, name)
        if width_bits <= 0:
            raise ValueError(f"channel width must be positive, got {width_bits}")
        if credits <= 0:
            raise ValueError(f"channel needs at least one credit, got {credits}")
        self.width_bits = width_bits
        self.clock = clock
        self.deliver = deliver
        self.on_drain = on_drain
        self._credits = credits
        self._max_credits = credits
        self._pending: Deque["NocMessage"] = deque()
        self._busy_until = 0
        self._busy_accum_ps = 0
        self._transfer_in_progress = False
        self._ser_cache: dict = {}
        # Cut-through fast path (see repro.noc.express): the fabric wires
        # `_express_route` on channels whose receiver is a router; while a
        # flight holds this channel, `_express_flight` marks the
        # reservation so interference de-speculates before proceeding.
        self._express_route: Optional[
            Callable[["NocMessage", "Channel"], bool]
        ] = None
        self._express_flight: Optional["ExpressFlight"] = None
        # Static route cache for express walks launched here: destination
        # address -> (channels, routers, final_router), or None when the
        # route cannot be expressed (unroutable / single hop).  Topology
        # never changes after build, so entries are computed once.
        self._express_paths: dict = {}
        # Pending injected faults (see inject_corruption / inject_drop):
        # each entry applies to one future transfer completion.
        self._fault_corruptions: Deque[tuple] = deque()
        self._fault_drops: Deque[bool] = deque()
        # Set by repro.telemetry; None-checked on the completion path only.
        self._tracer = None
        # Statistics.
        self.sent = Counter(f"{name}.sent")
        self.bits_sent = Counter(f"{name}.bits")
        self.stall_events = Counter(f"{name}.stalls")
        self.corrupted = Counter(f"{name}.corrupted")
        self.dropped_flits = Counter(f"{name}.dropped_flits")
        self.leaked_credits = Counter(f"{name}.leaked_credits")

    # ------------------------------------------------------------------
    # Sender interface
    # ------------------------------------------------------------------

    def submit(self, message: "NocMessage") -> None:
        """Queue a message for transmission (never drops)."""
        flight = self._express_flight
        if flight is not None:
            # New traffic on a reserved channel: de-speculate the express
            # flight first so this message sees exact slow-path state.
            flight.materialize()
        self._pending.append(message)
        self._try_start()

    @property
    def queue_len(self) -> int:
        """Messages waiting for the wire (sender side)."""
        return len(self._pending)

    @property
    def credits(self) -> int:
        """Credits currently available."""
        return self._credits

    def can_accept(self, limit: int = 1) -> bool:
        """True when the sender-side queue is below ``limit``.

        Routers use this to decide whether moving a message here would
        simply relocate a queue; keeping the limit small propagates
        backpressure toward the source instead of hiding it.
        """
        return len(self._pending) < limit

    # ------------------------------------------------------------------
    # Receiver interface
    # ------------------------------------------------------------------

    def release_credit(self) -> None:
        """Called by the receiver when a message leaves its input buffer."""
        if self._credits >= self._max_credits:
            raise RuntimeError(f"{self.name}: credit overflow")
        self._credits += 1
        self._try_start()

    @property
    def max_credits(self) -> int:
        """Size of the credit pool (downstream buffer slots)."""
        return self._max_credits

    @property
    def credit_deficit(self) -> int:
        """Credits currently held downstream (or leaked by a fault)."""
        return self._max_credits - self._credits

    # ------------------------------------------------------------------
    # Fault injection (see repro.faults)
    # ------------------------------------------------------------------

    def inject_corruption(self, rng, bits: int = 1,
                          offset: Optional[int] = None) -> None:
        """Arm a one-shot fault: the next message completing a transfer on
        this wire has ``bits`` random payload bits flipped (positions drawn
        from ``rng``, or within the byte at ``offset`` when given).  The
        message still delivers -- detection is the receiver's job, at
        checksum/ICV verification points.
        """
        flight = self._express_flight
        if flight is not None:
            flight.materialize()
        self._fault_corruptions.append((rng, bits, offset))

    def inject_drop(self, leak_credit: bool = True) -> None:
        """Arm a one-shot fault: the next message completing a transfer
        vanishes in flight.  With ``leak_credit`` (the default, modelling a
        corrupted credit-return path) the consumed credit is never
        returned, permanently shrinking the channel's pool -- the classic
        leak that eventually wedges a lossless mesh.
        """
        flight = self._express_flight
        if flight is not None:
            flight.materialize()
        self._fault_drops.append(leak_credit)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _serialization_ps(self, bits: int) -> int:
        cached = self._ser_cache.get(bits)
        if cached is not None:
            return cached
        cycles = -(-bits // self.width_bits)  # ceil division
        result = self.clock.cycles_to_ps(cycles + ROUTER_HOP_CYCLES)
        if len(self._ser_cache) < 512:
            self._ser_cache[bits] = result
        return result

    def _try_start(self) -> None:
        if self._transfer_in_progress or not self._pending:
            return
        if self._credits <= 0:
            self.stall_events.add()
            return
        if (self._express_route is not None
                and len(self._pending) == 1
                and self._express_flight is None
                and not self._fault_drops
                and not self._fault_corruptions
                and self._express_route(self._pending[0], self)):
            # The whole route was idle: the message now travels as an
            # ExpressFlight; the sender-side slot is free, as below.
            self._pending.popleft()
            if self.on_drain is not None:
                self.on_drain()
            return
        message = self._pending.popleft()
        bits = message.bits
        self._credits -= 1
        self._transfer_in_progress = True
        start = max(self.now, self._busy_until)
        duration = self._serialization_ps(bits)
        self._busy_until = start + duration
        self._busy_accum_ps += duration
        self.schedule(self._busy_until - self.now, self._complete, message)
        self.sent.value += 1
        self.bits_sent.value += bits
        if self.on_drain is not None:
            self.on_drain()

    def _complete(self, message: "NocMessage") -> None:
        self._transfer_in_progress = False
        tracer = self._tracer
        ctx = (message.packet.meta.annotations.get("__trace__")
               if tracer is not None else None)
        if self._fault_drops:
            leak = self._fault_drops.popleft()
            self.dropped_flits.add()
            if leak:
                self.leaked_credits.add()
            else:
                self._credits += 1
            if ctx is not None:
                tracer.instant(ctx, "wire_drop", self.name, self.now)
            self._try_start()
            return
        if self._fault_corruptions:
            rng, bits, offset = self._fault_corruptions.popleft()
            self._apply_corruption(message, rng, bits, offset)
        message.hops += 1
        if ctx is not None:
            # The transfer window is [now - serialization, now]: identical
            # to the arithmetic window express flights synthesize, so
            # fast- and slow-path traces line up span for span.
            tracer.hop(ctx, self.name,
                       self.now - self._serialization_ps(message.bits),
                       self.now)
        self.deliver(message, self)
        self._try_start()

    def _apply_corruption(self, message: "NocMessage", rng, bits: int,
                          offset: Optional[int]) -> None:
        data = bytearray(message.packet.data)
        if not data:
            return
        for _ in range(bits):
            if offset is not None and 0 <= offset < len(data):
                position = offset * 8 + rng.randint(0, 7)
            else:
                position = rng.randint(0, len(data) * 8 - 1)
            data[position // 8] ^= 1 << (position % 8)
        message.packet.data = bytes(data)
        self.corrupted.add()

    # ------------------------------------------------------------------
    # Express (cut-through) bookkeeping -- see repro.noc.express
    # ------------------------------------------------------------------

    def _account_express_hop(self, bits: int, start: int, end: int) -> None:
        """Retroactively apply a collapsed hop's statistics.

        The hop occupied the wires during ``[start, end]``; credits were
        consumed at ``start`` and returned at ``end`` by the downstream
        router's forward, so their net effect is zero.
        """
        self.sent.value += 1
        self.bits_sent.value += bits
        self._busy_accum_ps += end - start
        if end > self._busy_until:
            self._busy_until = end

    def _materialize_transfer(self, message: "NocMessage", start: int,
                              end: int) -> None:
        """Reconstruct an in-progress slow-path transfer for ``message``.

        Called by a de-speculating express flight for the hop whose
        serialization window covers the current time: the channel becomes
        busy until ``end`` with a genuine ``_complete`` event, exactly as
        if the transfer had started at ``start`` on the slow path.
        """
        self._transfer_in_progress = True
        self._credits -= 1
        self._busy_until = end
        self._busy_accum_ps += end - start
        self.sent.add()
        self.bits_sent.add(message.bits)
        self.sim.schedule_at(end, self._complete, message)

    def utilization(self, elapsed_ps: int) -> float:
        """Fraction of ``[0, elapsed_ps]`` the wires spent busy.

        Serialization time is accumulated per transfer (including
        collapsed express hops); any portion of an in-progress transfer
        beyond ``elapsed_ps`` is excluded.
        """
        if elapsed_ps <= 0:
            return 0.0
        busy = self._busy_accum_ps
        if self._busy_until > elapsed_ps:
            busy -= self._busy_until - elapsed_ps
        if busy <= 0:
            return 0.0
        return min(1.0, busy / elapsed_ps)
