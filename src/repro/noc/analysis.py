"""Closed-form mesh performance model (reproduces the paper's Table 3).

The paper characterizes candidate on-chip topologies by bisection bandwidth
and by the average offload-chain length sustainable at line rate under
uniform traffic (section 4.2, citing Dally & Towles).  The model below
reproduces every row of Table 3 exactly:

* **Bisection bandwidth** of a ``k x k`` mesh with channel bandwidth ``b``
  (``width_bits * freq``): the mid cut crosses ``k`` channel pairs, so
  ``B = 2 * k * b`` counting both directions.

* **All-to-all capacity** under uniform traffic: every traversal crosses
  the bisection with probability 1/2, so the total sustainable traversal
  bandwidth is ``2 * B``.

* **Chain length**: each packet makes ``C + OVERHEAD`` traversals of the
  network, where ``C`` is the number of offloads in its chain and
  ``OVERHEAD = 4`` accounts for the fixed hops every packet takes
  (Ethernet MAC -> RMT pipeline, RMT -> first engine ... last engine ->
  RMT/DMA -> PCIe).  With ``ports`` Ethernet ports at line rate ``R``
  (full duplex, the paper's "both transmit and receive directions"),
  sustaining line rate requires::

      ports * R * (C + 4) <= 2 * B_bisection / 2  =  2 * k * b

  giving  ``C = 2 * k * b / (ports * R) - 4``.

Checked against the paper: (40G x2, 6x6, 64b) -> 5.60; (40G x2, 8x8, 64b)
-> 8.80; (100G x2, 6x6, 128b) -> 3.68; (100G x2, 8x8, 128b) -> 6.24.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.clock import GHZ, MHZ

#: Fixed per-packet network traversals outside the offload chain itself
#: (MAC->RMT, RMT->chain, chain->RMT, RMT->DMA, DMA->PCIe bookkeeping).
CHAIN_OVERHEAD_TRAVERSALS = 4


@dataclass
class MeshAnalysis:
    """Analytical properties of a ``width x height`` mesh."""

    width: int
    height: int
    channel_bits: int
    freq_hz: float

    def __post_init__(self) -> None:
        if self.width < 2 or self.height < 2:
            raise ValueError(
                f"analysis assumes a mesh of at least 2x2, got "
                f"{self.width}x{self.height}"
            )
        if self.channel_bits <= 0 or self.freq_hz <= 0:
            raise ValueError("channel width and frequency must be positive")

    @property
    def channel_bw_bps(self) -> float:
        """Bandwidth of one channel (one direction)."""
        return self.channel_bits * self.freq_hz

    @property
    def bisection_channels(self) -> int:
        """Unidirectional channels crossing the worst-case mid cut."""
        k = min(self.width, self.height)
        return 2 * k

    @property
    def bisection_bw_bps(self) -> float:
        """Bisection bandwidth, both directions (paper's "Bisec BW")."""
        return self.bisection_channels * self.channel_bw_bps

    @property
    def capacity_bps(self) -> float:
        """All-to-all traversal capacity under uniform traffic.

        Each uniform-random traversal crosses the bisection with
        probability 1/2, so total traversal bandwidth = 2 x bisection.
        """
        return 2.0 * self.bisection_bw_bps

    def chain_length(
        self,
        line_rate_bps: float,
        ports: int,
        overhead: int = CHAIN_OVERHEAD_TRAVERSALS,
    ) -> float:
        """Average sustainable offload-chain length at line rate.

        Parameters mirror Table 3: per-port line rate and port count.
        Returns the paper's "Chain Len" column value.
        """
        if line_rate_bps <= 0 or ports <= 0:
            raise ValueError("line rate and port count must be positive")
        offered = line_rate_bps * ports
        return self.capacity_bps / offered - overhead

    @property
    def average_hops(self) -> float:
        """Mean XY-route hop count under uniform traffic (diagnostic)."""
        def mean_1d(k: int) -> float:
            return (k * k - 1) / (3.0 * k)

        return mean_1d(self.width) + mean_1d(self.height)

    @property
    def diameter(self) -> int:
        return (self.width - 1) + (self.height - 1)


@dataclass
class Table3Row:
    """One row of the paper's Table 3."""

    line_rate_gbps: int
    ports: int
    freq_mhz: int
    channel_bits: int
    topo: str
    bisection_gbps: float
    chain_length: float

    def label(self) -> str:
        return (
            f"{self.line_rate_gbps}Gbps x{self.ports} {self.freq_mhz}MHz "
            f"{self.channel_bits}b {self.topo}"
        )


#: The exact parameter grid of Table 3.
TABLE3_GRID = (
    (40, 2, 500, 64, 6),
    (40, 2, 500, 64, 8),
    (100, 2, 500, 128, 6),
    (100, 2, 500, 128, 8),
)

#: The values printed in the paper, for comparison in benches/tests.
TABLE3_PAPER = (
    (384.0, 5.60),
    (512.0, 8.80),
    (768.0, 3.68),
    (1024.0, 6.24),
)


def table3_rows() -> List[Table3Row]:
    """Compute every row of Table 3 from the analytical model."""
    rows = []
    for rate_gbps, ports, freq_mhz, bits, k in TABLE3_GRID:
        analysis = MeshAnalysis(k, k, bits, freq_mhz * MHZ)
        rows.append(
            Table3Row(
                line_rate_gbps=rate_gbps,
                ports=ports,
                freq_mhz=freq_mhz,
                channel_bits=bits,
                topo=f"{k}x{k} Mesh",
                bisection_gbps=analysis.bisection_bw_bps / 1e9,
                chain_length=analysis.chain_length(rate_gbps * 1e9, ports),
            )
        )
    return rows
