"""Cut-through (express) transfers across an idle mesh path.

The behavioural slow path charges every hop one kernel event: a channel
serializes the flit, ``_complete`` delivers it into the next router, the
router pumps it into the next channel, and so on.  All of that Python work
is pure overhead when the path is *idle*: arrival times are then an exact
analytic sum of per-channel serialization delays (``ceil(bits / width)``
cycles plus :data:`~repro.noc.channel.ROUTER_HOP_CYCLES` per hop).

An :class:`ExpressFlight` exploits that: when a message is submitted to an
idle channel and every channel and router on its dimension-ordered route is
also idle (no queued or serializing flits, credits available, no armed
faults), the whole traversal collapses into **one** kernel event at the
precomputed arrival time.  Final delivery still goes through the real
``Router.on_deliver``, so endpoint backpressure, round-robin state, and the
``delivered``/credit bookkeeping at the destination stay genuine.

Equivalence contract
--------------------

The fast path must be *invisible* in simulated terms: same delivery
timestamps, same delivery order, same quiesced statistics as the slow
path.  Two mechanisms enforce that:

* **Reservation.**  A flight marks every channel it will cross and every
  router it will cross *through*.  While reserved, those resources carry
  no other traffic -- any interference would change timing, so it must
  de-speculate first.
* **De-speculation.**  The moment anything touches a reserved resource
  (a ``submit`` on a reserved channel, a foreign delivery into a reserved
  router whose crossing is still pending, a fault armed on a reserved
  channel), the flight *materializes*: hops already completed are
  retroactively accounted, the in-flight hop is reconstructed as a genuine
  serializing transfer with a real ``_complete`` event, and the remainder
  of the route continues through the slow path.  The interferer then
  proceeds against exactly the state the slow path would have shown it.
  A foreign delivery into a router the flight has already crossed merely
  *commits* that crossing's accounting and drops the reservation -- the
  flight stays collapsed.

Statistics counters for intermediate hops are applied when the flight
finishes (or materializes) rather than hop-by-hop, so *mid-flight*
introspection of an express path can briefly read collapsed values; all
quiesced totals are identical.  Round-robin arbitration state is kept
bit-identical by replaying the exact number of rotations the slow path's
pump passes would have performed (two per forwarding router).

Because every channel in a mesh shares one width and clock, all hops of a
flight take the same serialization time: hop ``i`` occupies its channel
during ``[start + i*ser, start + (i+1)*ser]``, which the flight computes
arithmetically instead of materializing a per-hop schedule.
"""

from __future__ import annotations

from typing import Tuple, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.noc.channel import Channel
    from repro.noc.message import NocMessage
    from repro.noc.router import Router
    from repro.sim.kernel import Simulator


class ExpressFlight:
    """One message cut-through-routed over a reserved idle path.

    Parameters
    ----------
    sim:
        The simulation kernel.
    message:
        The envelope in flight.
    channels:
        The channels on the route, in traversal order.
    routers:
        The forwarding routers the message crosses *through* (one per
        channel except the last, whose router delivers locally).
    final_router:
        The destination router; delivery goes through its genuine
        ``on_deliver``.
    bits:
        On-chip size of the message (cached; it cannot change in flight).
    start:
        Simulated time the first hop starts serializing.
    ser:
        Per-hop serialization time (uniform across a mesh's channels).
    """

    __slots__ = ("sim", "message", "channels", "routers", "final_router",
                 "done", "event", "bits", "start", "ser", "committed")

    def __init__(self, sim: "Simulator", message: "NocMessage",
                 channels: Tuple["Channel", ...],
                 routers: Tuple["Router", ...],
                 final_router: "Router", bits: int, start: int, ser: int):
        self.sim = sim
        self.message = message
        self.channels = channels
        self.routers = routers
        self.final_router = final_router
        self.bits = bits
        self.start = start
        self.ser = ser
        self.done = False
        # Forwarding routers whose crossing has been retroactively
        # accounted already (a prefix of ``routers``; see interfere()).
        self.committed = 0
        for channel in channels:
            channel._express_flight = self
        for router in routers:
            router._express_flights.append(self)
        self.event = sim.schedule_at(
            start + len(channels) * ser, self._finish
        )

    # ------------------------------------------------------------------

    def _unregister(self) -> None:
        self.done = True
        for channel in self.channels:
            channel._express_flight = None
        for router in self.routers[self.committed:]:
            router._express_flights.remove(self)

    def _finish(self) -> None:
        """Deliver at the destination: account the collapsed hops, then
        hand the message to the final router's genuine slow path."""
        if self.done:
            return
        self._unregister()
        message = self.message
        bits = self.bits
        ser = self.ser
        end = self.start
        tracer = self.channels[0]._tracer
        ctx = (message.packet.meta.annotations.get("__trace__")
               if tracer is not None else None)
        for channel in self.channels:
            begin = end
            end += ser
            channel._account_express_hop(bits, begin, end)
            if ctx is not None:
                # Synthesized from the arithmetic hop windows: identical
                # to the spans a slow-path walk would have emitted.
                tracer.hop(ctx, channel.name, begin, end)
            message.hops += 1
        for router in self.routers[self.committed:]:
            router._account_express_forward()
        final_channel = self.channels[-1]
        # The delivery below releases (or parks) this credit exactly as a
        # slow-path arrival would.
        final_channel._credits -= 1
        self.final_router.on_deliver(message, final_channel)

    def materialize(self) -> None:
        """De-speculate: reconstruct the exact slow-path state at ``now``.

        Hops that finished strictly before ``now`` are accounted as done
        (their forwarding routers included); the hop whose serialization
        window covers ``now`` becomes a genuine in-progress transfer with
        a real ``_complete`` event, after which the message continues on
        the slow path.  A hop ending exactly at ``now`` is treated as
        still completing, so its ``_complete`` fires after the current
        event -- the conservative resolution of a same-instant tie.
        """
        if self.done:
            return
        self._unregister()
        self.event.cancel()
        now = self.sim.now
        message = self.message
        bits = self.bits
        ser = self.ser
        routers = self.routers
        end = self.start
        tracer = self.channels[0]._tracer
        ctx = (message.packet.meta.annotations.get("__trace__")
               if tracer is not None else None)
        for index, channel in enumerate(self.channels):
            begin = end
            end += ser
            if end < now:
                channel._account_express_hop(bits, begin, end)
                if ctx is not None:
                    tracer.hop(ctx, channel.name, begin, end)
                message.hops += 1
                if index >= self.committed:
                    routers[index]._account_express_forward()
            else:
                channel._materialize_transfer(message, begin, end)
                return
        raise RuntimeError(
            "express flight outlived its delivery event"
        )  # pragma: no cover - _finish fires at the last hop's end

    def interfere(self, router: "Router") -> None:
        """A foreign message was delivered into a router this flight
        crosses.

        If this flight already crossed ``router`` (its incoming hop ended
        strictly before ``now``), the slow path would have completed that
        forward before the interfering delivery: commit the crossing's
        accounting retroactively and drop the reservation, keeping the
        flight alive.  Crossing ends increase along the route, so every
        earlier crossing is committed too, maintaining ``committed`` as a
        prefix.  A crossing still pending (or tied at ``now``) genuinely
        contends, so the whole flight de-speculates.
        """
        if self.done:
            return
        index = self.routers.index(router)
        if self.start + (index + 1) * self.ser >= self.sim.now:
            self.materialize()
            return
        while self.committed <= index:
            crossed = self.routers[self.committed]
            crossed._account_express_forward()
            crossed._express_flights.remove(self)
            self.committed += 1
