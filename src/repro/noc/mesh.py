"""2D mesh construction and endpoint binding.

A :class:`Mesh` builds ``width x height`` routers, wires neighbouring
routers with a pair of opposed channels, and binds endpoints (engines) to
tiles.  Binding yields a :class:`NocPort`, the engine-side handle used to
inject messages.

Address scheme: the endpoint on tile ``(x, y)`` has NoC address
``y * width + x``.  Engine addresses therefore double as tile coordinates,
which is what the per-engine lightweight lookup tables store as next hops.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.noc.channel import Channel
from repro.noc.express import ExpressFlight
from repro.noc.message import NocMessage
from repro.noc.router import Endpoint, Router
from repro.packet.packet import Packet
from repro.sim.clock import MHZ, Clock
from repro.sim.kernel import Simulator
from repro.sim.stats import Counter


class MeshStuckError(RuntimeError):
    """The mesh quiesced with messages still buffered or queued.

    The message carries :meth:`Mesh.stuck_report`, naming the channels and
    routers holding traffic -- the starting point for diagnosing a credit
    leak or a wedged endpoint.
    """


@dataclass
class MeshConfig:
    """Parameters of the on-chip network.

    Defaults follow the paper's reference design point (section 4.2 and
    Table 3): 500 MHz clock, 64-bit channels.
    """

    width: int = 4
    height: int = 4
    channel_bits: int = 64
    freq_hz: float = 500 * MHZ
    credits: int = 8
    #: Enable cut-through express transfers over idle paths (see
    #: :mod:`repro.noc.express`).  Simulated timestamps, delivery order,
    #: and quiesced statistics are identical either way; disabling only
    #: forces every hop through the per-event slow path.
    fast_path: bool = True

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ValueError(f"mesh must be at least 1x1, got {self.width}x{self.height}")
        if self.channel_bits <= 0:
            raise ValueError(f"channel width must be positive: {self.channel_bits}")
        if self.credits <= 0:
            raise ValueError(f"credits must be positive: {self.credits}")

    @property
    def tiles(self) -> int:
        return self.width * self.height


class NocPort:
    """An endpoint's handle for injecting messages into the mesh."""

    def __init__(self, mesh: "Mesh", endpoint: Endpoint, channel: Channel):
        self._mesh = mesh
        self._endpoint = endpoint
        self._channel = channel
        self.injected = Counter(f"port{endpoint.address}.injected")

    @property
    def address(self) -> int:
        return self._endpoint.address

    def send(self, packet: Packet, dest_addr: int) -> NocMessage:
        """Inject ``packet`` toward ``dest_addr``; returns the envelope."""
        message = NocMessage(
            packet=packet,
            dest_addr=dest_addr,
            src_addr=self._endpoint.address,
            inject_ps=self._mesh.sim.now,
        )
        self.injected.value += 1
        self._channel.submit(message)
        return message

    def send_message(self, message: NocMessage) -> None:
        """Re-inject an existing envelope (e.g. after local re-routing)."""
        self._channel.submit(message)

    @property
    def backlog(self) -> int:
        """Messages waiting in the injection channel."""
        return self._channel.queue_len


class Mesh:
    """A ``width x height`` mesh of routers with bound endpoints."""

    def __init__(self, sim: Simulator, config: MeshConfig, name: str = "mesh"):
        self.sim = sim
        self.config = config
        self.name = name
        self.clock = Clock(config.freq_hz)
        self._routers: Dict[Tuple[int, int], Router] = {}
        self._endpoints: Dict[int, Endpoint] = {}
        self.channels: List[Channel] = []
        # Receiver router of every channel, for express route walks.
        self._channel_sink: Dict[Channel, Router] = {}
        self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def coords_of(self, address: int) -> Tuple[int, int]:
        """Tile coordinates for a NoC address."""
        if not 0 <= address < self.config.tiles:
            raise ValueError(
                f"address {address} outside {self.config.width}x"
                f"{self.config.height} mesh"
            )
        return address % self.config.width, address // self.config.width

    def address_of(self, x: int, y: int) -> int:
        if not (0 <= x < self.config.width and 0 <= y < self.config.height):
            raise ValueError(f"tile ({x},{y}) outside mesh")
        return y * self.config.width + x

    def _build(self) -> None:
        cfg = self.config
        for y in range(cfg.height):
            for x in range(cfg.width):
                address = self.address_of(x, y)
                router = Router(
                    self.sim,
                    f"{self.name}.r{x}_{y}",
                    x,
                    y,
                    address,
                    self.coords_of,
                )
                self._routers[(x, y)] = router
        # Wire neighbours with one channel per direction.
        for (x, y), router in self._routers.items():
            for dx, dy, direction in (
                (1, 0, "east"),
                (-1, 0, "west"),
                (0, 1, "south"),
                (0, -1, "north"),
            ):
                nx, ny = x + dx, y + dy
                neighbour = self._routers.get((nx, ny))
                if neighbour is None:
                    continue
                channel = Channel(
                    self.sim,
                    f"{self.name}.ch_{x}_{y}_{direction}",
                    cfg.channel_bits,
                    self.clock,
                    neighbour.on_deliver,
                    credits=cfg.credits,
                    on_drain=router.pump,
                )
                router.attach_output(direction, channel)
                neighbour.register_input(channel)
                self.channels.append(channel)
                self._channel_sink[channel] = neighbour
                if cfg.fast_path:
                    channel._express_route = self._try_express

    # ------------------------------------------------------------------
    # Endpoint binding
    # ------------------------------------------------------------------

    def bind(self, endpoint: Endpoint, x: int, y: int) -> NocPort:
        """Attach an endpoint to tile ``(x, y)`` and return its port."""
        address = self.address_of(x, y)
        if address in self._endpoints:
            raise ValueError(f"tile ({x},{y}) already has an endpoint")
        router = self._routers[(x, y)]
        endpoint.address = address
        router.attach_endpoint(endpoint)
        # Endpoints that refuse messages when full (lossless backpressure)
        # use this to wake the router once space frees.
        endpoint.notify_space = router.pump
        self._endpoints[address] = endpoint
        inject = Channel(
            self.sim,
            f"{self.name}.inj_{x}_{y}",
            self.config.channel_bits,
            self.clock,
            router.on_deliver,
            credits=self.config.credits,
        )
        router.register_input(inject)
        self.channels.append(inject)
        self._channel_sink[inject] = router
        if self.config.fast_path:
            inject._express_route = self._try_express
        return NocPort(self, endpoint, inject)

    # ------------------------------------------------------------------
    # Cut-through fast path (see repro.noc.express)
    # ------------------------------------------------------------------

    def _build_express_path(
        self, channel: Channel, dest: int
    ) -> Optional[Tuple[Tuple[Channel, ...], Tuple[Router, ...], Router, tuple]]:
        """Trace the static dimension-ordered route from ``channel`` to
        ``dest``, or None when express can never apply (single-hop routes
        save no events; unroutable destinations must raise on the slow
        path at their normal simulated time)."""
        sink = self._channel_sink
        router = sink[channel]
        if router.address == dest:
            return None
        channels = [channel]
        routers: List[Router] = []
        while router.address != dest:
            try:
                direction = router.route(dest)
            except ValueError:
                return None
            out = router._out.get(direction)
            if out is None:
                return None
            routers.append(router)
            channels.append(out)
            router = sink[out]
        # Pair each forwarding router with its outgoing channel so the
        # per-message idle scan is one fused loop.
        checks = tuple(zip(routers, channels[1:]))
        return tuple(channels), tuple(routers), router, checks

    def _try_express(self, message: NocMessage, channel: Channel) -> bool:
        """Attempt to cut a message through an entirely idle route.

        Called by an idle channel's ``_try_start``; when every channel and
        forwarding router ahead on the (cached, static) dimension-ordered
        route is idle, unreserved, and fault-free, the traversal collapses
        into a single :class:`ExpressFlight` delivery event.  Returns
        False to let the per-hop slow path proceed.
        """
        dest = message.dest_addr
        cache = channel._express_paths
        try:
            path = cache[dest]
        except KeyError:
            path = self._build_express_path(channel, dest)
            cache[dest] = path
        if path is None:
            return False
        channels, routers, final_router, checks = path
        for router, out in checks:
            if (router._buffered
                    or out._express_flight is not None
                    or out._transfer_in_progress
                    or out._pending
                    or out._credits <= 0
                    or out._fault_drops
                    or out._fault_corruptions):
                return False
        bits = message.bits
        # Every channel in a mesh shares one width and clock, so one
        # serialization delay covers every hop: hop i's window follows
        # arithmetically from (now, ser) inside the flight.
        ser = channel._serialization_ps(bits)
        ExpressFlight(self.sim, message, channels, routers, final_router,
                      bits, self.sim.now, ser)
        return True

    @property
    def express_in_flight(self) -> int:
        """Messages currently travelling as collapsed express flights."""
        flights = {
            ch._express_flight
            for ch in self.channels
            if ch._express_flight is not None
        }
        return len(flights)

    def endpoint_at(self, address: int) -> Endpoint:
        try:
            return self._endpoints[address]
        except KeyError:
            raise ValueError(f"no endpoint bound at address {address}") from None

    def unbound_tiles(self) -> List[Tuple[int, int]]:
        """Tiles with no endpoint attached (free for monitors, spares...)."""
        return [
            (x, y)
            for y in range(self.config.height)
            for x in range(self.config.width)
            if self.address_of(x, y) not in self._endpoints
        ]

    def channel(self, name: str) -> Channel:
        """Look up a channel by its full name (e.g. ``mesh.inj_0_0``)."""
        for channel in self.channels:
            if channel.name == name:
                return channel
        raise ValueError(f"no channel named {name!r} in {self.name}")

    def router_at(self, x: int, y: int) -> Router:
        return self._routers[(x, y)]

    @property
    def routers(self) -> List[Router]:
        return list(self._routers.values())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    @property
    def buffered_messages(self) -> int:
        """Total messages buffered inside routers (for drain checks)."""
        return sum(router.buffered_messages for router in self._routers.values())

    @property
    def in_flight(self) -> int:
        """Messages buffered in routers or queued/serializing on channels,
        plus any collapsed express flights still travelling."""
        queued = sum(channel.queue_len for channel in self.channels)
        return self.buffered_messages + queued + self.express_in_flight

    @property
    def credit_deficit(self) -> int:
        """Total credits held downstream or leaked across all channels."""
        return sum(channel.credit_deficit for channel in self.channels)

    def stuck_report(self) -> str:
        """Name the channels and routers still holding traffic or credits.

        Used by :meth:`assert_drained` and the fault-injection harness: a
        quiesced mesh with ``in_flight != 0`` (or a credit deficit with no
        traffic) indicates a deadlock or leak, and this report points at
        the exact links involved instead of a bare count.
        """
        lines: List[str] = []
        for channel in self.channels:
            busy = channel._transfer_in_progress
            if channel.queue_len or busy or channel.credit_deficit:
                state = []
                if channel.queue_len:
                    state.append(f"{channel.queue_len} queued")
                if busy:
                    state.append("transfer in progress")
                if channel.credit_deficit:
                    state.append(
                        f"{channel.credit_deficit}/{channel.max_credits} "
                        "credits outstanding"
                    )
                if channel.leaked_credits.value:
                    state.append(f"{channel.leaked_credits.value} leaked")
                lines.append(f"  channel {channel.name}: {', '.join(state)}")
        for router in self._routers.values():
            if router.buffered_messages:
                lines.append(
                    f"  router {router.name}: {router.buffered_messages} "
                    "buffered messages"
                )
        express = self.express_in_flight
        if express:
            lines.append(f"  {express} express flight(s) awaiting delivery")
        if not lines:
            return f"{self.name}: fully drained"
        header = (
            f"{self.name}: {self.in_flight} messages in flight, "
            f"{self.credit_deficit} credits outstanding"
        )
        return "\n".join([header] + lines)

    def assert_drained(self) -> None:
        """Raise :class:`MeshStuckError` (with the stuck report) when
        messages remain buffered in routers or queued on channels."""
        if self.in_flight != 0:
            raise MeshStuckError(self.stuck_report())

    def bisection_bandwidth_bps(self) -> float:
        """Analytical bisection bandwidth of this mesh (both directions)."""
        from repro.noc.analysis import MeshAnalysis

        return MeshAnalysis(
            self.config.width,
            self.config.height,
            self.config.channel_bits,
            self.config.freq_hz,
        ).bisection_bw_bps
