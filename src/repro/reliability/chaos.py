"""Seeded chaos testing for the reliable rack.

One chaos **case** is fully determined by an integer seed: the seed
generates a random :class:`~repro.faults.plan.FaultPlan` (lossy wires,
corruption, flaps, engine slowdowns and crashes), the reliable rack
incast runs under it monolithically and sharded, and the results are
held to the invariants reliable delivery promises *whatever the faults
did*:

1. **No committed frame lost** -- every sequence number a sender counts
   as cumulatively acknowledged was in fact delivered to the receiving
   host.
2. **No duplicate to the host** -- each receiver saw every ``(src,
   seq)`` at most once.
3. **Accounting closes** -- per flow, ``sent == acked + failed``, and
   unfinished business only exists on flows that surfaced a
   ``DeliveryFailed``.
4. **mono == sharded** -- per-NIC reports and per-direction wire stats
   are bit-identical between execution modes.
5. **Replay determinism** -- regenerating the plan from the seed and
   rerunning reproduces the run bit-for-bit.

Goodput retained (delivered frames over offered frames) is reported per
case; it is a *measurement*, not an invariant -- a chaos plan that cuts
a wire forever legitimately sinks goodput, while the invariants above
must survive anything.

A case runs under one **config** -- ``"gbn"`` (go-back-N), ``"sr"``
(selective repeat with SACK + adaptive RTO), ``"gbn+ll"``/``"sr+ll"``
(either transport with LinkGuardian-style link-local repair armed on
every wire), or ``"lb"`` (the load-balanced rack: clients drive one
reliable flow each at a VIP while seeded weather drains and crashes
backends underneath them) -- and :func:`run_chaos` runs each seed under
every requested config, so one batch yields the recovery-strategy
comparison (retransmit counts, goodput, flow completion times) the
experiment log tracks.

The ``lb`` config swaps the incast for :func:`lb_rack_topology` and adds
two invariants of its own, gated bit-identically mono vs. sharded at any
worker count, conservative and speculative:

6. **No affinity violation** -- an established flow never changes
   backend mid-connection.  Checked two ways: the data plane's own
   evidence (``lb_stats``: zero live-collision bypasses and zero
   evictions means every steered packet after the first was a register
   hit on its pinned backend), and the delivery record (no client's
   sequence numbers ever reached more than one backend host).
7. **Zero committed loss during migration** -- the committed-loss check
   above, but against the *union* of backend delivery sets: whatever
   epoch churn the drain/fail verbs caused mid-flight, every
   cumulatively-acknowledged sequence number landed on some backend.

Goodput floors are per-config: pass ``goodput_floor`` a mapping
``{config: floor}`` (what ``benchmarks/chaos/floor.json`` holds) and
each config is gated against its own entry; a bare float keeps the
legacy behaviour of gating link-local configs only.  Floor breaches
land in ``floor_failures`` without flipping ``passed`` -- invariants
and floors fail independently.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Union

from repro.faults.plan import FaultPlan
from repro.faults.rack import wire_target
from repro.lb.rack import lb_layout, lb_rack_topology
from repro.reliability.rack import reliable_rack_topology
from repro.sim.clock import US
from repro.sim.rng import SeededRng

#: Configs a chaos case can run under (four transport flavours plus the
#: load-balanced rack).
TRANSPORT_CONFIGS = ("gbn", "sr", "gbn+ll", "sr+ll", "lb")

#: Per-seed goodput floor enforced for link-local configs (CI gate)
#: when ``goodput_floor`` is given as a bare float.
DEFAULT_GOODPUT_FLOOR = 0.95


def split_config(config: str):
    """``"gbn+ll"`` -> ``("gbn", True)``; validates the vocabulary.

    ``"lb"`` is a rack choice rather than a transport choice; it splits
    to ``("lb", False)`` so floor bookkeeping treats it uniformly.
    """
    if config == "lb":
        return "lb", False
    transport, _sep, suffix = config.partition("+")
    if transport not in ("gbn", "sr") or _sep and suffix != "ll":
        raise ValueError(
            f"unknown transport config {config!r}; have {TRANSPORT_CONFIGS}")
    return transport, bool(_sep)

#: Engines a chaos plan may wound: present on every rack NIC and on the
#: data path, so faults bite without invalidating the plan.
CHAOS_ENGINES = ("checksum", "rmt")

#: Fault-mix probabilities and ranges (drawn per case from its seed).
LOSS_WIRE_P = 0.6          # chance each wire gets a Bernoulli loss model
DROP_RANGE = (0.005, 0.03)
CORRUPT_P = 0.3            # chance a lossy wire also corrupts
CORRUPT_RANGE = (0.002, 0.01)
FLAP_P = 0.4               # chance of one link-down interval
SLOW_P = 0.4               # chance one engine is slowed (then recovered)
CRASH_P = 0.15             # chance one engine is crashed outright


def generate_chaos_plan(seed: int, nics: int,
                        horizon_ps: int = 100 * US,
                        link_local: bool = False) -> FaultPlan:
    """A random-but-reproducible fault mix for an ``nics``-NIC rack.

    Every stochastic choice comes from forks of ``seed``, so equal seeds
    build equal plans (the replay-determinism invariant leans on this).
    ``horizon_ps`` bounds fault timing -- roughly the active traffic
    window of the incast.  With ``link_local`` every wire additionally
    arms sub-RTT repair from t=0 (the fault mix itself is unchanged, so
    a ``gbn`` vs ``gbn+ll`` pair of cases faces identical weather).
    """
    plan = FaultPlan(seed=seed)
    if link_local:
        for i in range(nics):
            for j in range(i + 1, nics):
                plan.link_local(0, wire_target(i, j))
    rng = SeededRng(seed).fork("chaosplan")
    wires = [(i, j) for i in range(nics) for j in range(i + 1, nics)]
    for i, j in wires:
        if rng.random() < LOSS_WIRE_P:
            drop_p = rng.uniform(*DROP_RANGE)
            corrupt_p = (rng.uniform(*CORRUPT_RANGE)
                         if rng.random() < CORRUPT_P else 0.0)
            plan.wire_loss(rng.randint(0, horizon_ps // 4),
                           wire_target(i, j),
                           drop_p=drop_p, corrupt_p=corrupt_p)
    if rng.random() < FLAP_P:
        i, j = rng.choice(wires)
        down = rng.randint(horizon_ps // 10, horizon_ps // 2)
        plan.flap_wire(down, down + rng.randint(10 * US, horizon_ps // 2),
                       wire_target(i, j))
    if rng.random() < SLOW_P:
        nic = rng.randint(0, nics - 1)
        engine = rng.choice(CHAOS_ENGINES)
        at = rng.randint(0, horizon_ps // 2)
        plan.slow_engine(at, f"nic{nic}:{engine}",
                         factor=rng.uniform(2.0, 6.0))
        plan.recover_engine(at + rng.randint(10 * US, horizon_ps // 2),
                            f"nic{nic}:{engine}")
    if rng.random() < CRASH_P:
        # Crash the checksum lane of one *sender* (never the shared
        # incast receiver nic0): its flows abort with DeliveryFailed
        # while the rest of the rack keeps its goodput.
        nic = rng.randint(1, nics - 1)
        plan.crash_engine(rng.randint(0, horizon_ps),
                          f"nic{nic}:checksum")
    return plan


# ----------------------------------------------------------------------
# The lb config: seeded weather for the load-balanced rack
# ----------------------------------------------------------------------

#: Rack shape the ``lb`` chaos config runs with: one LB, three
#: backends, three clients.  Independent of the incast's ``nics`` knob
#: (a 4-NIC incast batch can still include ``lb`` cases).
LB_NICS = 7
LB_BACKENDS = 3

#: Chance the seed crashes one backend NIC dark mid-run (both MACs off;
#: the health monitor must detect it and fail the backend out).
BACKEND_DOWN_P = 0.35

#: Chance the seed schedules a planned live drain of one backend.
DRAIN_P = 0.6


def lb_drain_params(seed: int, n_backends: int = LB_BACKENDS,
                    horizon_ps: int = 100 * US):
    """``(backend, at_ps)`` for the seed's planned drain, or None.

    Drawn from its own fork of the seed so the drain schedule -- which
    lives in the *topology* (a control-plane verb on the LB node), not
    the fault plan -- replays identically alongside the plan."""
    rng = SeededRng(seed).fork("lbdrain")
    if rng.random() >= DRAIN_P:
        return None
    backend = rng.randint(1, n_backends)
    return backend, rng.randint(horizon_ps // 8, horizon_ps // 2)


def generate_lb_chaos_plan(seed: int, nics: int,
                           n_backends: int = LB_BACKENDS,
                           horizon_ps: int = 100 * US) -> FaultPlan:
    """Seeded weather for the load-balanced rack.

    The same wire-loss and engine-slowdown mix as the incast plan, plus
    the failure this config exists for: one backend NIC may go *dark*
    (``nic_down`` -- MACs off in both directions, engines still
    running), which the LB's heartbeat monitor must detect and fail out
    of the ring.  At most one backend crashes and at most one drains
    per case, so with three backends the VIP always keeps a live one.
    """
    plan = FaultPlan(seed=seed)
    rng = SeededRng(seed).fork("lbchaos")
    wires = [(i, j) for i in range(nics) for j in range(i + 1, nics)]
    for i, j in wires:
        if rng.random() < LOSS_WIRE_P:
            drop_p = rng.uniform(*DROP_RANGE)
            corrupt_p = (rng.uniform(*CORRUPT_RANGE)
                         if rng.random() < CORRUPT_P else 0.0)
            plan.wire_loss(rng.randint(0, horizon_ps // 4),
                           wire_target(i, j),
                           drop_p=drop_p, corrupt_p=corrupt_p)
    if rng.random() < SLOW_P:
        nic = rng.randint(0, nics - 1)
        engine = rng.choice(CHAOS_ENGINES)
        at = rng.randint(0, horizon_ps // 2)
        plan.slow_engine(at, f"nic{nic}:{engine}",
                         factor=rng.uniform(2.0, 6.0))
        plan.recover_engine(at + rng.randint(10 * US, horizon_ps // 2),
                            f"nic{nic}:{engine}")
    if rng.random() < BACKEND_DOWN_P:
        backend = rng.randint(1, n_backends)
        plan.nic_down(rng.randint(horizon_ps // 4, (3 * horizon_ps) // 5),
                      f"nic{backend}")
    return plan


def _check_modes(mono, shard, replay) -> List[str]:
    """Execution-mode invariants shared by every config: sharded and
    replayed runs must be bit-identical to the monolithic one."""
    violations: List[str] = []
    if shard is not None:
        if mono.reports != shard.reports:
            diverged = sorted(
                n for n in mono.reports
                if mono.reports[n] != shard.reports.get(n)
            )
            violations.append(f"mono != sharded reports (nics {diverged})")
        if mono.wire_stats != shard.wire_stats:
            violations.append("mono != sharded wire stats")
    if replay is not None and (mono.reports != replay.reports
                               or mono.wire_stats != replay.wire_stats):
        violations.append("replay from seed diverged")
    return violations


def _check_case(mono, shard, replay) -> List[str]:
    """All invariant violations of one chaos case (empty = pass)."""
    violations = _check_modes(mono, shard, replay)

    # Receiver-side view: delivered (src, seq) pairs per NIC index.
    delivered: Dict[int, set] = {}
    for name, report in mono.reports.items():
        rx = int(name[3:])
        pairs = [(src, seq) for src, seq, _t, _q in report["deliveries"]]
        if len(pairs) != len(set(pairs)):
            violations.append(f"duplicate delivery to host on {name}")
        delivered[rx] = set(pairs)

    # Sender-side view vs receiver truth.
    for name, report in mono.reports.items():
        src = int(name[3:])
        aborted_flows = {f[0] for f in report.get("failures", ())}
        for dst, flow in report.get("tx_flows", {}).items():
            missing = [seq for seq in range(flow["acked"])
                       if (src, seq) not in delivered.get(dst, set())]
            if missing:
                violations.append(
                    f"committed loss {name}->nic{dst}: acked seqs "
                    f"{missing[:5]} never reached the host"
                )
            if flow["sent"] != flow["acked"] + flow["failed"]:
                violations.append(
                    f"accounting leak {name}->nic{dst}: "
                    f"sent={flow['sent']} acked={flow['acked']} "
                    f"failed={flow['failed']}"
                )
            if flow["failed"] and not flow["aborted"]:
                violations.append(
                    f"unacked data without DeliveryFailed {name}->nic{dst}"
                )
            if flow["aborted"] and dst not in aborted_flows:
                violations.append(
                    f"aborted flow {name}->nic{dst} missing its "
                    f"DeliveryFailed record"
                )
    return violations


def _check_lb_case(mono, shard, replay, n_backends: int) -> List[str]:
    """Invariant violations of one ``lb`` chaos case (empty = pass).

    On top of the mode checks, the two invariants this config gates:
    *no affinity violation* (a flow never changes backend
    mid-connection, witnessed both by the LB's own ``lb_stats``
    evidence and by no client's sequence numbers landing on two
    backends) and *zero committed loss during migration* (the
    committed-loss check run against the union of backend delivery
    sets, so epoch churn mid-flight cannot hide a forged ACK).
    """
    violations = _check_modes(mono, shard, replay)
    backends = range(1, n_backends + 1)

    # Backend-side truth: which (client, seq) pairs each backend's host
    # actually received.
    delivered_by: Dict[int, set] = {}
    for b in backends:
        pairs = [(src, seq) for src, seq, _t, _q
                 in mono.reports[f"nic{b}"]["deliveries"]]
        if len(pairs) != len(set(pairs)):
            violations.append(f"duplicate delivery to host on nic{b}")
        delivered_by[b] = set(pairs)
    union = set().union(*delivered_by.values())

    # Data-plane evidence from the balancer itself: with zero bypasses
    # and zero evictions, every steered packet after a flow's first was
    # a register hit on its pinned backend -- pinning is structural.
    lb_stats = mono.reports["nic0"]["steering"]["stats"]
    if lb_stats["bypass"]:
        violations.append(
            f"affinity violation: {lb_stats['bypass']} packets steered "
            f"ring-only past a live affinity-slot collision"
        )
    if lb_stats["evictions"]:
        violations.append(
            f"affinity violation: {lb_stats['evictions']} affinity "
            f"slots evicted while flows were live"
        )

    for name, report in mono.reports.items():
        src = int(name[3:])
        aborted_flows = {f[0] for f in report.get("failures", ())}
        servers = sorted(b for b in backends
                         if any(s == src for s, _seq in delivered_by[b]))
        if len(servers) > 1:
            violations.append(
                f"affinity violation: flow from {name} delivered by "
                f"backends {servers}"
            )
        for dst, flow in report.get("tx_flows", {}).items():
            missing = [seq for seq in range(flow["acked"])
                       if (src, seq) not in union]
            if missing:
                violations.append(
                    f"committed loss {name}->vip: acked seqs "
                    f"{missing[:5]} never reached any backend host"
                )
            if flow["sent"] != flow["acked"] + flow["failed"]:
                violations.append(
                    f"accounting leak {name}->vip: "
                    f"sent={flow['sent']} acked={flow['acked']} "
                    f"failed={flow['failed']}"
                )
            if flow["failed"] and not flow["aborted"]:
                violations.append(
                    f"unacked data without DeliveryFailed {name}->vip"
                )
            if flow["aborted"] and dst not in aborted_flows:
                violations.append(
                    f"aborted flow {name}->vip missing its "
                    f"DeliveryFailed record"
                )
    return violations


def run_chaos_case(
    seed: int,
    *,
    nics: int = 4,
    pattern: str = "fanin",
    frames: int = 30,
    workers: int = 2,
    check_replay: bool = True,
    config: str = "gbn",
    failover: bool = True,
    speculative: bool = False,
    lb_nics: int = LB_NICS,
) -> dict:
    """Run one seeded chaos case end to end; returns a picklable report.

    ``config`` picks the recovery strategy (see
    :data:`TRANSPORT_CONFIGS`); the fault mix depends only on the seed,
    so cases differing only in ``config`` are directly comparable.
    ``failover`` arms the spare checksum lane + health monitor on every
    NIC (the hardened rack CI gates on).  ``speculative`` runs the
    sharded leg with speculative shard windows -- the mono-vs-sharded
    invariant must hold either way.  The ``lb`` config runs its own
    ``lb_nics``-node rack shape (``nics``/``pattern`` describe the
    incast and do not apply to it).

    ``invariants`` maps each invariant to a bool; ``violations`` lists
    the specifics when something broke.  ``goodput`` is delivered over
    offered across the rack.
    """
    from repro.sim.shard import run_monolithic, run_sharded

    if config == "lb":
        return _run_lb_case(
            seed, nics=lb_nics, frames=frames, workers=workers,
            check_replay=check_replay, speculative=speculative,
        )

    transport, link_local = split_config(config)

    def topology():
        return reliable_rack_topology(
            nics=nics, pattern=pattern, frames=frames, seed=seed,
            transport=transport, failover=failover,
        )

    def chaos_plan():
        return generate_chaos_plan(seed, nics, link_local=link_local)

    plan = chaos_plan()
    mono = run_monolithic(topology(), fault_plan=plan)
    shard = run_sharded(topology(), workers=workers, fault_plan=chaos_plan(),
                        speculative=speculative)
    replay = (run_monolithic(topology(), fault_plan=chaos_plan())
              if check_replay else None)

    violations = _check_case(mono, shard, replay)

    sent = sum(r["sent"] for r in mono.reports.values())
    delivered = sum(len(r["deliveries"]) for r in mono.reports.values())
    retransmits = sum(
        r["stats"]["reliability"]["retransmits"]
        for r in mono.reports.values()
    )
    failures = sum(len(r.get("failures", ())) for r in mono.reports.values())
    wire_faults = {
        label: stats for label, stats in sorted(mono.wire_stats.items())
        if stats["loss_drops"] or stats["corruptions"] or stats["down_drops"]
    }
    fcts = [t for r in mono.reports.values()
            for t in r.get("fct", {}).values()]
    linklayer = {
        "protected": 0, "nacks": 0, "retransmits": 0,
        "repaired": 0, "gave_up": 0, "bypassed": 0,
    }
    for stats in mono.wire_stats.values():
        for key in linklayer:
            linklayer[key] += stats.get("linklayer", {}).get(key, 0)
    return {
        "seed": seed,
        "config": config,
        "plan": plan.describe(),
        "events": len(plan),
        "invariants": {
            "no_committed_loss": not any(
                "committed loss" in v for v in violations),
            "no_duplicates": not any(
                "duplicate delivery" in v for v in violations),
            "accounting": not any(
                ("accounting" in v or "DeliveryFailed" in v)
                for v in violations),
            "mono_eq_sharded": not any(
                "mono != sharded" in v for v in violations),
            "replay_deterministic": not any(
                "replay" in v for v in violations),
        },
        "violations": violations,
        "passed": not violations,
        "sent": sent,
        "delivered": delivered,
        "goodput": delivered / sent if sent else 1.0,
        "retransmits": retransmits,
        "rto_fired": sum(
            r["stats"]["reliability"]["rto_fired"]
            for r in mono.reports.values()
        ),
        "delivery_failures": failures,
        "fct_mean_ps": int(sum(fcts) / len(fcts)) if fcts else 0,
        "fct_max_ps": max(fcts) if fcts else 0,
        "linklayer": linklayer,
        "wire_faults": wire_faults,
    }


def _run_lb_case(
    seed: int,
    *,
    nics: int,
    frames: int,
    workers: int,
    check_replay: bool,
    speculative: bool,
) -> dict:
    """One seeded case of the ``lb`` config (see module docstring)."""
    from repro.sim.shard import run_monolithic, run_sharded

    n_backends = LB_BACKENDS
    lb_layout(nics, n_backends)  # fail fast on shapes with no clients
    drain = lb_drain_params(seed, n_backends)

    def topology():
        return lb_rack_topology(
            nics=nics, n_backends=n_backends, frames=frames, seed=seed,
            drain=drain,
        )

    def chaos_plan():
        return generate_lb_chaos_plan(seed, nics, n_backends)

    plan = chaos_plan()
    mono = run_monolithic(topology(), fault_plan=plan)
    shard = run_sharded(topology(), workers=workers, fault_plan=chaos_plan(),
                        speculative=speculative)
    replay = (run_monolithic(topology(), fault_plan=chaos_plan())
              if check_replay else None)

    violations = _check_lb_case(mono, shard, replay, n_backends)

    reports = mono.reports
    sent = sum(r.get("sent", 0) for r in reports.values())
    delivered = sum(len(r.get("deliveries", ())) for r in reports.values())
    retransmits = sum(
        r["stats"].get("reliability", {}).get("retransmits", 0)
        for r in reports.values()
    )
    rto_fired = sum(
        r["stats"].get("reliability", {}).get("rto_fired", 0)
        for r in reports.values()
    )
    failures = sum(len(r.get("failures", ())) for r in reports.values())
    fcts = [t for r in reports.values() for t in r.get("fct", {}).values()]
    wire_faults = {
        label: stats for label, stats in sorted(mono.wire_stats.items())
        if stats["loss_drops"] or stats["corruptions"] or stats["down_drops"]
    }
    lb = reports["nic0"]
    return {
        "seed": seed,
        "config": "lb",
        "plan": plan.describe(),
        "events": len(plan),
        "invariants": {
            "no_committed_loss": not any(
                "committed loss" in v for v in violations),
            "no_affinity_violation": not any(
                "affinity violation" in v for v in violations),
            "no_duplicates": not any(
                "duplicate delivery" in v for v in violations),
            "accounting": not any(
                ("accounting" in v or "DeliveryFailed" in v)
                for v in violations),
            "mono_eq_sharded": not any(
                "mono != sharded" in v for v in violations),
            "replay_deterministic": not any(
                "replay" in v for v in violations),
        },
        "violations": violations,
        "passed": not violations,
        "sent": sent,
        "delivered": delivered,
        "goodput": delivered / sent if sent else 1.0,
        "retransmits": retransmits,
        "rto_fired": rto_fired,
        "delivery_failures": failures,
        "fct_mean_ps": int(sum(fcts) / len(fcts)) if fcts else 0,
        "fct_max_ps": max(fcts) if fcts else 0,
        # The lb rack never arms link-local repair; zeros keep the
        # per-config summary shape uniform.
        "linklayer": {
            "protected": 0, "nacks": 0, "retransmits": 0,
            "repaired": 0, "gave_up": 0, "bypassed": 0,
        },
        "wire_faults": wire_faults,
        "lb": {
            "drain": list(drain) if drain else None,
            "epoch": lb["steering"]["epoch"],
            "live_backends": lb["steering"]["backends"],
            "draining": lb["steering"]["draining"],
            "failed": lb["steering"]["failed"],
            "gc_removed": lb["steering"]["gc_removed"],
            "affinity": lb["steering"]["stats"],
            "monitor": lb["monitor"],
        },
    }


def run_chaos(
    seeds,
    *,
    nics: int = 4,
    pattern: str = "fanin",
    frames: int = 30,
    workers: int = 2,
    check_replay: bool = True,
    progress: Optional[callable] = None,
    configs=("gbn",),
    failover: bool = True,
    goodput_floor: Union[float, Dict[str, float], None] = (
        DEFAULT_GOODPUT_FLOOR),
    speculative: bool = False,
    lb_nics: int = LB_NICS,
) -> dict:
    """Run a batch of chaos cases; the harness/CLI entry point.

    Each seed runs once per entry of ``configs`` (same fault weather,
    different recovery strategy); ``by_config`` summarises each
    strategy so the comparison reads off directly.  ``goodput_floor``
    may be a mapping ``{config: floor}`` (per-config CI gates, the
    shape ``benchmarks/chaos/floor.json`` holds -- configs absent from
    the mapping are ungated) or a bare float, which keeps the legacy
    behaviour of gating link-local configs only.  Floor breaches land
    in ``floor_failures`` without flipping ``passed`` (invariants and
    floors fail independently; the benchmark runner exits nonzero on
    either).
    """
    for config in configs:
        split_config(config)  # fail fast on vocabulary typos
    cases = []
    for seed in seeds:
        for config in configs:
            case = run_chaos_case(
                seed, nics=nics, pattern=pattern, frames=frames,
                workers=workers, check_replay=check_replay,
                config=config, failover=failover,
                speculative=speculative, lb_nics=lb_nics,
            )
            cases.append(case)
            if progress is not None:
                progress(case)

    by_config = {}
    for config in configs:
        rows = [c for c in cases if c["config"] == config]
        goodputs = [c["goodput"] for c in rows]
        fcts = [c["fct_mean_ps"] for c in rows if c["fct_mean_ps"]]
        by_config[config] = {
            "passed": all(c["passed"] for c in rows),
            "goodput_min": min(goodputs) if goodputs else 1.0,
            "goodput_mean": (sum(goodputs) / len(goodputs)
                             if goodputs else 1.0),
            "retransmits": sum(c["retransmits"] for c in rows),
            "rto_fired": sum(c["rto_fired"] for c in rows),
            "delivery_failures": sum(c["delivery_failures"] for c in rows),
            "fct_mean_ps": int(sum(fcts) / len(fcts)) if fcts else 0,
            "ll_repaired": sum(c["linklayer"]["repaired"] for c in rows),
            "ll_gave_up": sum(c["linklayer"]["gave_up"] for c in rows),
        }

    def floor_for(config: str) -> Optional[float]:
        if goodput_floor is None:
            return None
        if isinstance(goodput_floor, dict):
            return goodput_floor.get(config)
        return goodput_floor if split_config(config)[1] else None

    floor_failures = [
        {"seed": c["seed"], "config": c["config"],
         "goodput": c["goodput"], "floor": floor_for(c["config"])}
        for c in cases
        if floor_for(c["config"]) is not None
        and c["goodput"] < floor_for(c["config"])
    ]

    goodputs = [case["goodput"] for case in cases]
    return {
        "params": {
            "nics": nics, "pattern": pattern, "frames": frames,
            "workers": workers, "seeds": list(seeds),
            "configs": list(configs), "failover": failover,
            "goodput_floor": goodput_floor,
            "speculative": speculative, "lb_nics": lb_nics,
        },
        "cases": cases,
        "by_config": by_config,
        "passed": all(case["passed"] for case in cases),
        "failed_seeds": sorted({c["seed"] for c in cases if not c["passed"]}),
        "floor_failures": floor_failures,
        "floor_ok": not floor_failures,
        "goodput_min": min(goodputs) if goodputs else 1.0,
        "goodput_mean": (sum(goodputs) / len(goodputs)) if goodputs else 1.0,
    }


def write_chaos_trace(
    path: str,
    seed: int,
    *,
    nics: int = 4,
    pattern: str = "fanin",
    frames: int = 30,
    workers: int = 2,
    config: str = "gbn",
    failover: bool = True,
) -> int:
    """Re-run one chaos case sharded with telemetry enabled and write
    the coordinator-merged Perfetto trace to ``path``; returns the
    trace-event count.

    The gated invariant runs stay telemetry-free on purpose (the gate
    measures the product, not the instrumentation); this separate
    observability pass regenerates the *same* seeded fault weather, so
    the trace shows exactly what the gated run survived: per-packet
    spans across every NIC plus the shard-coordinator window-churn
    counter track (:func:`repro.telemetry.export.shard_window_counters`).
    """
    from repro.sim.shard import run_sharded
    from repro.telemetry import TelemetryConfig
    from repro.telemetry.export import (
        shard_window_counters,
        write_chrome_trace,
    )

    transport, link_local = split_config(config)
    topology = reliable_rack_topology(
        nics=nics, pattern=pattern, frames=frames, seed=seed,
        transport=transport, failover=failover,
        telemetry=TelemetryConfig(),
    )
    plan = generate_chaos_plan(seed, nics, link_local=link_local)
    result = run_sharded(topology, workers=workers, fault_plan=plan)
    return write_chrome_trace(
        path, result.trace or {},
        extra_events=shard_window_counters(result))
