"""Selective-repeat reliable transport with SACK and adaptive RTO.

The go-back-N transport (:mod:`repro.reliability.transport`) resends the
*whole* outstanding window on every timeout and runs a fixed,
deliberately conservative RTO.  That is the wrong tool for 1% wire
corruption: one lost frame costs a window's worth of duplicate bytes
and tens of microseconds of idle wire.  This module upgrades the host
side to classic selective repeat:

* **per-segment SACK blocks** in every ACK -- the receiver reports its
  cumulative front *and* up to :data:`SACK_MAX_BLOCKS` ranges of
  out-of-order segments it is buffering, so the sender retransmits
  exactly the holes;
* **out-of-order receiver buffering** with cumulative in-order delivery
  to the application (``on_deliver`` still fires exactly once per
  segment, in order);
* **adaptive RTO** from per-flow RTT measurement: EWMA ``srtt`` /
  ``rttvar`` (RFC 6298 gains, alpha=1/8 beta=1/4) with **Karn's rule**
  -- a segment that was ever retransmitted never contributes a sample,
  because its ACK is ambiguous -- replacing the fixed
  ``default_rto_ps`` heuristic;
* **fast retransmit by SACK inference** -- a hole with
  :data:`FAST_RETX_DUPTHRESH` SACKed segments above it is retransmitted
  without waiting for the timer (once per hole; the RTO still backs it
  up).

Sequence numbers occupy a finite 16-bit wire space and wrap; all
internal state is kept in *absolute* sequence numbers and wire fields
are unwrapped relative to the receiver/sender front (sound while the
window stays far below half the space, enforced at construction).  The
wire format extends :mod:`repro.reliability.transport`'s framing with
two new segment types, so a selective-repeat NIC and a go-back-N NIC
can share a rack without misparsing each other::

    0       2     3      5      7      9
    +-------+-----+------+------+------+----------------------+
    | magic | typ | src  | dst  | seq  |  payload / SACK info |
    +-------+-----+------+------+------+----------------------+

For ``SR_DATA`` the tail is the app payload; for ``SR_ACK`` ``seq`` is
the cumulative front ("every sequence number below this, mod 2^16, has
been delivered") and the tail is ``count`` (1 byte) followed by
``count`` SACK blocks of two 16-bit words each, ``[start, end)`` in
wire space.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.reliability.transport import (
    DEFAULT_JITTER,
    DEFAULT_MAX_RETRIES,
    DEFAULT_WINDOW,
    DeliveryFailed,
    MAGIC,
    segment_offset,
)
from repro.sim.stats import Counter

#: Segment types (disjoint from go-back-N's DATA=0/ACK=1).
SR_DATA = 2
SR_ACK = 3

#: The wire sequence space: 16-bit, wrapping.
SEQ_SPACE = 1 << 16
SEQ_MASK = SEQ_SPACE - 1
#: Unwrap horizon: wire deltas at or beyond half the space are in the
#: past.  Windows must stay well below this (checked at construction).
SEQ_HALF = SEQ_SPACE // 2

_SR_HEADER = struct.Struct("!HBHHH")  # magic, type, src, dst, seq16
SR_HEADER_BYTES = _SR_HEADER.size
_SACK_BLOCK = struct.Struct("!HH")

#: At most this many SACK blocks ride in one ACK (TCP fits 3-4).
SACK_MAX_BLOCKS = 4
#: SACKed segments above a hole before fast retransmit fires.
FAST_RETX_DUPTHRESH = 3

#: EWMA gains and variance multiplier (RFC 6298).
RTT_ALPHA = 0.125
RTT_BETA = 0.25
RTO_K = 4


def seq_wrap(seq: int) -> int:
    """Absolute sequence number -> 16-bit wire field."""
    return seq & SEQ_MASK


def seq_unwrap(wire_seq: int, reference: int) -> int:
    """Wire field -> the absolute sequence number closest at or ahead of
    ``reference`` within half the space; older numbers come back
    negative-delta (i.e. below ``reference``).

    ``unwrap(wrap(s), ref) == s`` whenever ``|s - ref| < SEQ_HALF`` --
    the property every window bound in this module preserves.
    """
    delta = (wire_seq - reference) & SEQ_MASK
    if delta >= SEQ_HALF:
        delta -= SEQ_SPACE
    return reference + delta


def pack_sr_data(src: int, dst: int, seq: int, payload: bytes = b"") -> bytes:
    """Serialize one selective-repeat DATA segment."""
    return _SR_HEADER.pack(MAGIC, SR_DATA, src, dst, seq_wrap(seq)) + payload


def pack_sr_ack(src: int, dst: int, cum: int,
                blocks: Tuple[Tuple[int, int], ...] = ()) -> bytes:
    """Serialize a cumulative-ACK-plus-SACK segment.

    ``blocks`` are absolute ``[start, end)`` ranges; both words are
    wrapped onto the wire.  An empty ``end`` range is invalid.
    """
    if len(blocks) > SACK_MAX_BLOCKS:
        raise ValueError(f"at most {SACK_MAX_BLOCKS} SACK blocks, "
                         f"got {len(blocks)}")
    out = [_SR_HEADER.pack(MAGIC, SR_ACK, src, dst, seq_wrap(cum)),
           bytes([len(blocks)])]
    for start, end in blocks:
        if start == end:
            raise ValueError("empty SACK block")
        out.append(_SACK_BLOCK.pack(seq_wrap(start), seq_wrap(end)))
    return b"".join(out)


def parse_sr_segment(payload: bytes) -> Optional[tuple]:
    """Parse a UDP payload as a selective-repeat segment.

    Returns ``(SR_DATA, src, dst, seq, app_payload)`` or ``(SR_ACK,
    src, dst, cum, blocks)`` with wire-space (wrapped) numbers, or None
    for anything that is not a well-formed SR segment -- including a
    truncated SACK tail, which a corrupted frame can produce.
    """
    if len(payload) < SR_HEADER_BYTES:
        return None
    magic, seg_type, src, dst, seq = _SR_HEADER.unpack_from(payload)
    if magic != MAGIC or seg_type not in (SR_DATA, SR_ACK):
        return None
    rest = payload[SR_HEADER_BYTES:]
    if seg_type == SR_DATA:
        return SR_DATA, src, dst, seq, rest
    if not rest:
        return None
    count = rest[0]
    if count > SACK_MAX_BLOCKS:
        return None
    need = 1 + count * _SACK_BLOCK.size
    if len(rest) < need:
        return None
    blocks = tuple(
        _SACK_BLOCK.unpack_from(rest, 1 + i * _SACK_BLOCK.size)
        for i in range(count)
    )
    return SR_ACK, src, dst, seq, blocks


class RttEstimator:
    """Per-flow smoothed RTT and adaptive RTO (RFC 6298 shape).

    Until the first sample the RTO is ``rto_initial_ps`` (the old fixed
    heuristic, now just the cold-start value).  After that::

        srtt   <- (1 - alpha) * srtt + alpha * R
        rttvar <- (1 - beta) * rttvar + beta * |srtt - R|
        rto     = clamp(srtt + max(K * rttvar, srtt / 4),
                        rto_min_ps, rto_max_ps)

    The ``srtt / 4`` floor on the variance term stands in for RFC
    6298's clock-granularity ``G``: in a deterministic simulator
    ``rttvar`` can decay toward zero, and an RTO equal to ``srtt``
    would fire spuriously on every in-flight ACK.  Callers enforce
    Karn's rule -- never feed a sample measured from a retransmitted
    segment -- because a retransmitted segment's ACK is ambiguous.
    """

    __slots__ = ("rto_initial_ps", "rto_min_ps", "rto_max_ps",
                 "srtt_ps", "rttvar_ps", "samples")

    def __init__(self, rto_initial_ps: int, rto_min_ps: int,
                 rto_max_ps: int):
        if not 0 < rto_min_ps <= rto_max_ps:
            raise ValueError(
                f"need 0 < rto_min <= rto_max, got "
                f"{rto_min_ps}..{rto_max_ps}")
        self.rto_initial_ps = rto_initial_ps
        self.rto_min_ps = rto_min_ps
        self.rto_max_ps = rto_max_ps
        self.srtt_ps: Optional[float] = None
        self.rttvar_ps = 0.0
        self.samples = 0

    def sample(self, rtt_ps: int) -> None:
        """Fold one RTT measurement in (caller applies Karn's rule)."""
        self.samples += 1
        if self.srtt_ps is None:
            self.srtt_ps = float(rtt_ps)
            self.rttvar_ps = rtt_ps / 2.0
            return
        self.rttvar_ps = ((1.0 - RTT_BETA) * self.rttvar_ps
                          + RTT_BETA * abs(self.srtt_ps - rtt_ps))
        self.srtt_ps = (1.0 - RTT_ALPHA) * self.srtt_ps + RTT_ALPHA * rtt_ps

    def rto_ps(self) -> int:
        if self.srtt_ps is None:
            return self.rto_initial_ps
        rto = self.srtt_ps + max(RTO_K * self.rttvar_ps, self.srtt_ps / 4.0)
        return int(min(max(rto, self.rto_min_ps), self.rto_max_ps))


class _SrTxFlow:
    """Sender state for one destination (absolute sequence numbers)."""

    __slots__ = ("dst", "payloads", "offered", "base", "next_seq",
                 "sacked", "sent_at", "retransmitted", "fast_done",
                 "retries", "backoff", "timer_gen", "aborted",
                 "completed_ps", "rtt")

    def __init__(self, dst: int, initial_seq: int, rtt: RttEstimator):
        self.dst = dst
        self.payloads: Dict[int, bytes] = {}  # abs seq -> app payload
        self.offered = 0       # total payloads ever offered
        self.base = initial_seq       # lowest unacknowledged
        self.next_seq = initial_seq   # next never-sent
        self.sacked: Set[int] = set()  # SACKed beyond base
        self.sent_at: Dict[int, int] = {}   # abs seq -> first-TX time
        self.retransmitted: Set[int] = set()  # Karn-poisoned seqs
        self.fast_done: Set[int] = set()    # holes already fast-retx'd
        self.retries = 0       # consecutive RTO expiries w/o progress
        self.backoff = 1       # RTO multiplier (doubles per expiry)
        self.timer_gen = 0
        self.aborted = False
        self.completed_ps: Optional[int] = None
        self.rtt = rtt

    def outstanding(self) -> bool:
        return self.base < self.next_seq


class _SrRxFlow:
    """Receiver state for one source."""

    __slots__ = ("rcv_next", "buffer")

    def __init__(self, initial_seq: int):
        self.rcv_next = initial_seq
        self.buffer: Dict[int, bytes] = {}  # abs seq -> payload (OOO)


class SelectiveRepeatTransport:
    """Selective-repeat sender + receiver for one NIC's host software.

    Drop-in alternative to
    :class:`~repro.reliability.transport.ReliableTransport` -- same
    constructor surface, same ``send``/``stats``/``flow_report``
    contract -- differing in the wire format (SR segment types), the
    receiver (buffers out of order, ACKs carry SACK blocks), and the
    retransmission policy (per-hole, timer driven by measured RTT).

    ``initial_seq`` offsets the absolute sequence space; production
    flows start at 0, wraparound tests start just below
    :data:`SEQ_SPACE` so a handful of frames cross the wrap.  Both ends
    of a flow must agree on it.
    """

    def __init__(
        self,
        nic,
        index: int,
        *,
        frame_builder: Callable[[int, bytes], bytes],
        rng,
        rto_initial_ps: int,
        rto_min_ps: Optional[int] = None,
        rto_max_ps: Optional[int] = None,
        window: int = DEFAULT_WINDOW,
        max_retries: int = DEFAULT_MAX_RETRIES,
        jitter: float = DEFAULT_JITTER,
        on_deliver: Optional[Callable[[int, int, bytes, int], None]] = None,
        tx_queue: int = 0,
        initial_seq: int = 0,
        accept_dst: Optional[set] = None,
        reply_as: Optional[int] = None,
    ):
        if not 1 <= window <= SEQ_HALF // 4:
            raise ValueError(
                f"window must be in 1..{SEQ_HALF // 4} (unwrap safety), "
                f"got {window}")
        if rto_initial_ps <= 0:
            raise ValueError(
                f"rto_initial_ps must be > 0, got {rto_initial_ps}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        if initial_seq < 0:
            raise ValueError(f"initial_seq must be >= 0, got {initial_seq}")
        self.nic = nic
        self.sim = nic.sim
        self.index = index
        self.frame_builder = frame_builder
        self.rng = rng
        self.window = window
        self.rto_initial_ps = rto_initial_ps
        self.rto_min_ps = rto_min_ps or max(1, rto_initial_ps // 8)
        self.rto_max_ps = rto_max_ps or 16 * rto_initial_ps
        self.max_retries = max_retries
        self.jitter = jitter
        self.on_deliver = on_deliver
        self.tx_queue = tx_queue
        self.initial_seq = initial_seq
        # Direct-server-return serving (repro.lb): accept the virtual
        # index, answer as the virtual index (see ReliableTransport).
        self.accept_dst = frozenset(accept_dst or ())
        self.reply_as = self.index if reply_as is None else reply_as

        self._tx: Dict[int, _SrTxFlow] = {}
        self._rx: Dict[int, _SrRxFlow] = {}
        self.failures: List[DeliveryFailed] = []

        label = f"{nic.name}.sr"
        self.data_sent = Counter(f"{label}.data_sent")
        self.retransmits = Counter(f"{label}.retransmits")
        self.rto_fired = Counter(f"{label}.rto_fired")
        self.fast_retransmits = Counter(f"{label}.fast_retransmits")
        self.acks_sent = Counter(f"{label}.acks_sent")
        self.acks_received = Counter(f"{label}.acks_received")
        self.dup_acks = Counter(f"{label}.dup_acks")
        self.sack_blocks_rx = Counter(f"{label}.sack_blocks_rx")
        self.rtt_samples = Counter(f"{label}.rtt_samples")
        self.delivered = Counter(f"{label}.delivered")
        self.buffered_ooo = Counter(f"{label}.buffered_ooo")
        self.duplicates_suppressed = Counter(f"{label}.dups_suppressed")
        self.out_of_order_dropped = Counter(f"{label}.ooo_dropped")
        self.parse_rejects = Counter(f"{label}.parse_rejects")

        self._trace_ctx = None
        self._tracer = None
        if nic.telemetry is not None:
            self._tracer = nic.telemetry.tracer
            self._trace_ctx = self._tracer.flow_ctx()

        nic.host.software_handler = self._on_host_rx
        nic.transport = self

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------

    def send(self, dst: int, payload: bytes) -> None:
        """Offer one application payload to flow ``dst``."""
        flow = self._tx.get(dst)
        if flow is None:
            flow = self._tx[dst] = _SrTxFlow(
                dst, self.initial_seq,
                RttEstimator(self.rto_initial_ps, self.rto_min_ps,
                             self.rto_max_ps),
            )
        flow.payloads[self.initial_seq + flow.offered] = bytes(payload)
        flow.offered += 1
        flow.completed_ps = None
        self._pump(flow)

    def _pump(self, flow: _SrTxFlow) -> None:
        if flow.aborted:
            return
        limit = flow.base + self.window
        top = self.initial_seq + flow.offered
        pumped = False
        while flow.next_seq < limit and flow.next_seq < top:
            self._transmit(flow, flow.next_seq, first=True)
            flow.next_seq += 1
            self.data_sent.add()
            pumped = True
        if pumped and flow.outstanding():
            self._arm_timer(flow)

    def _transmit(self, flow: _SrTxFlow, seq: int, first: bool) -> None:
        if first:
            flow.sent_at[seq] = self.sim.now
        else:
            flow.retransmitted.add(seq)  # Karn: sample never taken
        segment = pack_sr_data(self.index, flow.dst, seq, flow.payloads[seq])
        self.nic.host.enqueue_tx(
            self.frame_builder(flow.dst, segment), self.tx_queue
        )

    def _arm_timer(self, flow: _SrTxFlow) -> None:
        flow.timer_gen += 1
        rto = min(flow.rtt.rto_ps() * flow.backoff, self.rto_max_ps)
        rto = max(1, int(rto * (
            1.0 + self.rng.uniform(-self.jitter, self.jitter)
        )))
        self.sim.schedule_at(
            self.sim.now + rto, self._on_timer, flow, flow.timer_gen
        )

    def _on_timer(self, flow: _SrTxFlow, gen: int) -> None:
        if gen != flow.timer_gen or flow.aborted or not flow.outstanding():
            return
        self.rto_fired.add()
        flow.retries += 1
        self._trace("rel_rto", (("dst", flow.dst),
                                ("rto_ps", flow.rtt.rto_ps() * flow.backoff),
                                ("retries", flow.retries)))
        if flow.retries > self.max_retries:
            self._abort(flow)
            return
        flow.backoff = min(flow.backoff * 2, 1 << 14)
        # Selective repeat: resend only the oldest hole, not the window.
        self._transmit(flow, flow.base, first=False)
        self.retransmits.add()
        self._trace("rel_retransmit", (("dst", flow.dst),
                                       ("seq", flow.base),
                                       ("kind", "rto")))
        self._arm_timer(flow)

    def _abort(self, flow: _SrTxFlow) -> None:
        flow.aborted = True
        flow.timer_gen += 1
        self.failures.append(DeliveryFailed(
            dst=flow.dst, first_seq=flow.base, at_ps=self.sim.now,
            retries=flow.retries,
        ))
        self._trace("rel_abort", (("dst", flow.dst),
                                  ("first_seq", flow.base)))

    def _on_ack(self, src: int, cum_wire: int,
                blocks: Tuple[Tuple[int, int], ...]) -> None:
        flow = self._tx.get(src)
        if flow is None or flow.aborted:
            return
        cum = seq_unwrap(cum_wire, flow.base)
        if cum < flow.base:
            self.dup_acks.add()
            return
        cum = min(cum, flow.next_seq)

        # Fold the SACK blocks in (absolute, bounded by the send front).
        newly_sacked: List[int] = []
        for start_wire, end_wire in blocks:
            start = seq_unwrap(start_wire, flow.base)
            length = (end_wire - start_wire) & SEQ_MASK
            self.sack_blocks_rx.add()
            for seq in range(start, start + length):
                if cum <= seq < flow.next_seq and seq not in flow.sacked:
                    flow.sacked.add(seq)
                    newly_sacked.append(seq)

        if cum == flow.base and not newly_sacked:
            self.dup_acks.add()
            self._fast_retransmit(flow)
            return
        self.acks_received.add()

        # RTT sample (Karn's rule): the youngest newly-confirmed segment
        # that was transmitted exactly once.
        newly_acked = list(range(flow.base, cum)) + newly_sacked
        for seq in sorted(newly_acked, reverse=True):
            if seq not in flow.retransmitted and seq in flow.sent_at:
                flow.rtt.sample(self.sim.now - flow.sent_at[seq])
                self.rtt_samples.add()
                break

        progressed = cum > flow.base
        flow.base = cum
        while flow.base in flow.sacked:
            flow.sacked.discard(flow.base)
            flow.base += 1
            progressed = True
        for seq in list(flow.payloads):
            if seq < flow.base:
                del flow.payloads[seq]
                flow.sent_at.pop(seq, None)
                flow.retransmitted.discard(seq)
                flow.fast_done.discard(seq)
        if progressed:
            flow.retries = 0
            flow.backoff = 1
        self._fast_retransmit(flow)
        self._pump(flow)
        if flow.outstanding():
            if progressed:
                self._arm_timer(flow)  # restart RTO for the new oldest
        else:
            flow.timer_gen += 1  # nothing in flight: disarm
            if flow.offered and flow.base == self.initial_seq + flow.offered:
                flow.completed_ps = self.sim.now

    def _fast_retransmit(self, flow: _SrTxFlow) -> None:
        """SACK-inferred loss: a hole with ``FAST_RETX_DUPTHRESH`` SACKed
        segments above it is gone; resend it now, once."""
        if flow.aborted or not flow.sacked:
            return
        sacked_sorted = sorted(flow.sacked)
        for seq in range(flow.base, sacked_sorted[-1]):
            if seq in flow.sacked or seq in flow.fast_done:
                continue
            above = len(flow.sacked) - _count_le(sacked_sorted, seq)
            if above >= FAST_RETX_DUPTHRESH:
                flow.fast_done.add(seq)
                self._transmit(flow, seq, first=False)
                self.retransmits.add()
                self.fast_retransmits.add()
                self._trace("rel_retransmit", (("dst", flow.dst),
                                               ("seq", seq),
                                               ("kind", "fast")))

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------

    def _on_host_rx(self, packet, queue: int) -> None:
        parsed = parse_sr_segment(packet.data[segment_offset(packet):])
        if parsed is None:
            self.parse_rejects.add()
            return
        seg_type, src, dst, seq, tail = parsed
        if dst != self.index and dst not in self.accept_dst:
            self.parse_rejects.add()
            return
        if seg_type == SR_ACK:
            self._on_ack(src, seq, tail)
            return
        rx = self._rx.get(src)
        if rx is None:
            rx = self._rx[src] = _SrRxFlow(self.initial_seq)
        seq_abs = seq_unwrap(seq, rx.rcv_next)
        just_buffered = False
        if seq_abs < rx.rcv_next or seq_abs in rx.buffer:
            self.duplicates_suppressed.add()
        elif seq_abs >= rx.rcv_next + 4 * self.window:
            # Far beyond any plausible send window: refuse to buffer.
            self.out_of_order_dropped.add()
        else:
            rx.buffer[seq_abs] = tail
            just_buffered = True
            if seq_abs != rx.rcv_next:
                self.buffered_ooo.add()
            while rx.rcv_next in rx.buffer:
                payload = rx.buffer.pop(rx.rcv_next)
                self.delivered.add()
                if self.on_deliver is not None:
                    self.on_deliver(src, rx.rcv_next, payload, queue)
                rx.rcv_next += 1
        self._send_ack(rx, src, seq_abs if just_buffered else None)

    def _send_ack(self, rx: _SrRxFlow, src: int,
                  latest: Optional[int]) -> None:
        """Advertise the cumulative front plus SACK blocks.

        The block containing the segment that triggered this ACK rides
        first (freshest information), then the remaining OOO ranges in
        ascending order, capped at :data:`SACK_MAX_BLOCKS`.
        """
        blocks: List[Tuple[int, int]] = []
        if rx.buffer:
            ranges = _contiguous_ranges(sorted(rx.buffer))
            if latest is not None:
                for block in ranges:
                    if block[0] <= latest < block[1]:
                        blocks.append(block)
                        ranges.remove(block)
                        break
            blocks.extend(ranges)
            blocks = blocks[:SACK_MAX_BLOCKS]
        ack = pack_sr_ack(self.reply_as, src, rx.rcv_next, tuple(blocks))
        self.nic.host.enqueue_tx(self.frame_builder(src, ack), self.tx_queue)
        self.acks_sent.add()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _trace(self, kind: str, args: Tuple) -> None:
        if self._tracer is not None:
            self._tracer.instant(self._trace_ctx, kind,
                                 f"{self.nic.name}.reliability",
                                 self.sim.now, args)

    def stats(self) -> Dict[str, int]:
        """The ``stats()["reliability"]`` block of the owning NIC.

        Shares the go-back-N keys the chaos harness aggregates
        (``retransmits``/``rto_fired``/``delivery_failures``) and adds
        the selective-repeat-specific ones.
        """
        return {
            "data_sent": self.data_sent.value,
            "retransmits": self.retransmits.value,
            "rto_fired": self.rto_fired.value,
            "fast_retransmits": self.fast_retransmits.value,
            "acks_sent": self.acks_sent.value,
            "acks_received": self.acks_received.value,
            "dup_acks": self.dup_acks.value,
            "sack_blocks_rx": self.sack_blocks_rx.value,
            "rtt_samples": self.rtt_samples.value,
            "delivered": self.delivered.value,
            "buffered_ooo": self.buffered_ooo.value,
            "duplicates_suppressed": self.duplicates_suppressed.value,
            "out_of_order_dropped": self.out_of_order_dropped.value,
            "parse_rejects": self.parse_rejects.value,
            "delivery_failures": len(self.failures),
        }

    def flow_report(self) -> Dict[int, Dict[str, int]]:
        """Per-destination accounting; ``acked`` is the *cumulative*
        prefix (SACKed-but-not-contiguous segments at abort time count
        as failed -- the sender never confirmed them to the app)."""
        out: Dict[int, Dict[str, int]] = {}
        for dst, flow in sorted(self._tx.items()):
            sent = flow.offered
            acked = min(flow.base - self.initial_seq, sent)
            out[dst] = {
                "sent": sent,
                "acked": acked,
                "failed": sent - acked,
                "aborted": int(flow.aborted),
            }
        return out

    def fct_report(self) -> Dict[int, int]:
        """Flow completion times: dst -> instant the last offered
        payload was cumulatively acknowledged (completed flows only)."""
        return {
            dst: flow.completed_ps
            for dst, flow in sorted(self._tx.items())
            if flow.completed_ps is not None
        }

    def rtt_report(self) -> Dict[int, Dict[str, float]]:
        """Per-flow estimator state (srtt/rttvar/rto in ps)."""
        out = {}
        for dst, flow in sorted(self._tx.items()):
            out[dst] = {
                "srtt_ps": round(flow.rtt.srtt_ps or 0.0, 3),
                "rttvar_ps": round(flow.rtt.rttvar_ps, 3),
                "rto_ps": flow.rtt.rto_ps(),
                "samples": flow.rtt.samples,
            }
        return out

    def failure_report(self) -> List[tuple]:
        """Picklable ``DeliveryFailed`` records."""
        return [tuple(f) for f in self.failures]


def _contiguous_ranges(seqs: List[int]) -> List[Tuple[int, int]]:
    """Sorted absolute seqs -> maximal ``[start, end)`` ranges."""
    ranges: List[Tuple[int, int]] = []
    start = prev = None
    for seq in seqs:
        if start is None:
            start = prev = seq
        elif seq == prev + 1:
            prev = seq
        else:
            ranges.append((start, prev + 1))
            start = prev = seq
    if start is not None:
        ranges.append((start, prev + 1))
    return ranges


def _count_le(sorted_seqs: List[int], value: int) -> int:
    """How many entries of ``sorted_seqs`` are <= ``value`` (bisect)."""
    import bisect

    return bisect.bisect_right(sorted_seqs, value)
