"""Link-local loss recovery between adjacent hops (LinkGuardian-style).

PR 5 left loss repair entirely to the end hosts: a dropped or corrupted
frame costs a full host RTO (tens of microseconds) and, under go-back-N,
a whole-window resend.  Real line-rate stacks repair corruption *on the
link*: the receiver CRC-checks every frame, NACKs the sender across one
wire round trip, and the sender retransmits from a small hold buffer --
so the end-to-end timer almost never fires (LinkGuardian, NSDI'23).

:class:`LinkLayer` models that protocol for one transmit direction of an
external wire.  It is armed per wire through the existing
``FaultPlan``/``arm_rack_faults`` machinery
(:meth:`~repro.faults.plan.FaultPlan.link_local`), and wraps the
direction's :class:`~repro.workloads.wire.LinkFaults` gate:

* **sender hold buffer** -- every protected frame occupies a slot until
  the receiver's coalesced ACK releases it; at ``hold_frames``
  occupancy, new frames bypass protection (counted) rather than stall
  the wire, so the buffer is bounded by construction;
* **receiver NACK** -- a corrupted frame is CRC-detected on arrival and
  NACKed immediately; a dropped frame is detected by the receiver's
  gap/aging timer (``detect_ps``) and then NACKed;
* **sender retransmission** -- up to ``max_repair`` retransmissions per
  frame, each re-crossing the faulty segment (and so itself subject to
  drop/corruption); a frame that exhausts its repair budget is lost to
  the link layer and surfaced to the host transport as ordinary loss;
* **in-order handoff** -- the receiver resequences: a frame cannot be
  handed to the next hop before every earlier frame on the wire, so a
  repair delays its successors (head-of-line at the resequencing
  buffer) rather than reordering them.

Determinism contract
--------------------

The entire repair trajectory of a frame -- every retransmission's coin
flip, the final delivery timestamp -- is computed **at the original
transmit instant**, in the per-direction TX FIFO order that is
identical between monolithic and sharded execution (the same argument
that makes :class:`~repro.workloads.wire.LinkFaults` mode-independent).
Retransmission draws therefore consume the direction's fault RNG in a
mode-independent order, and the computed delivery timestamp is simply
scheduled (monolithic ``Wire``) or shipped as the capsule's
``arrival_ps`` (sharded ``ShardBoundary``).  The cost of this choice is
a documented modelling simplification: a retransmission at ``t + 2
x prop`` meets the fault state (loss probabilities, outage flag) frozen
at ``t``, so flap edges bind at frame-transmit granularity.  Outages
are deliberately *not* repaired -- a dead cable is a failure class for
the host transport (and the fault-tolerance layer), not for sub-RTT
link repair.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.sim.clock import NS
from repro.sim.stats import Counter

#: Defaults, chosen so one repair costs ~2 wire round trips -- far
#: below the host transport's RTO (``8 x prop + 30 us``).
DEFAULT_HOLD_FRAMES = 64
DEFAULT_MAX_REPAIR = 4
#: Receiver-side detection delay for a *dropped* frame (the gap/aging
#: timer; corruption is CRC-detected with no extra delay).
DEFAULT_DETECT_PS = 1000 * NS
#: Receiver NACK processing + sender hold-buffer fetch turnaround.
DEFAULT_TURNAROUND_PS = 50 * NS
#: Extra delay after handoff before the coalesced ACK releases the
#: sender's hold-buffer slot.
DEFAULT_ACK_COALESCE_PS = 500 * NS


class LinkLayer:
    """Sub-RTT repair for one transmit direction of an external wire.

    Parameters
    ----------
    faults:
        The direction's :class:`~repro.workloads.wire.LinkFaults` gate;
        every (re)transmission attempt passes through it, consuming the
        same seeded coin flips in both execution modes.
    propagation_ps:
        One-way wire latency; a NACK round trip costs two of these.
    tracer, trace_ctx:
        Optional :class:`~repro.telemetry.tracer.PacketTracer` of the
        *transmitting* NIC plus a flow context for ``ll_nack`` /
        ``ll_retransmit`` / ``ll_handoff`` instants (mirroring the host
        transport's ``rel_*`` instants).
    """

    __slots__ = (
        "faults", "propagation_ps", "hold_frames", "max_repair",
        "detect_ps", "turnaround_ps", "ack_coalesce_ps",
        "_handoff_front_ps", "_releases", "occupancy_peak",
        "protected", "nacks", "retransmits", "repaired", "gave_up",
        "bypassed", "handoff_held", "_tracer", "_trace_ctx",
    )

    def __init__(
        self,
        faults,
        propagation_ps: int,
        *,
        hold_frames: int = DEFAULT_HOLD_FRAMES,
        max_repair: int = DEFAULT_MAX_REPAIR,
        detect_ps: int = DEFAULT_DETECT_PS,
        turnaround_ps: int = DEFAULT_TURNAROUND_PS,
        ack_coalesce_ps: int = DEFAULT_ACK_COALESCE_PS,
        tracer=None,
        trace_ctx=None,
    ):
        if hold_frames < 1:
            raise ValueError(f"hold_frames must be >= 1, got {hold_frames}")
        if max_repair < 1:
            raise ValueError(f"max_repair must be >= 1, got {max_repair}")
        if propagation_ps <= 0:
            raise ValueError(
                f"propagation must be positive, got {propagation_ps}"
            )
        self.faults = faults
        self.propagation_ps = propagation_ps
        self.hold_frames = hold_frames
        self.max_repair = max_repair
        self.detect_ps = detect_ps
        self.turnaround_ps = turnaround_ps
        self.ack_coalesce_ps = ack_coalesce_ps

        #: Receiver resequencing front: no frame hands off earlier.
        self._handoff_front_ps = 0
        #: Hold-buffer release times (min-heap), one entry per in-flight
        #: protected frame.
        self._releases: List[int] = []
        self.occupancy_peak = 0

        label = faults.label
        self.protected = Counter(f"{label}.ll_protected")
        self.nacks = Counter(f"{label}.ll_nacks")
        self.retransmits = Counter(f"{label}.ll_retransmits")
        self.repaired = Counter(f"{label}.ll_repaired")
        self.gave_up = Counter(f"{label}.ll_gave_up")
        self.bypassed = Counter(f"{label}.ll_bypassed")
        self.handoff_held = Counter(f"{label}.ll_handoff_held")
        self._tracer = tracer
        self._trace_ctx = trace_ctx

    # ------------------------------------------------------------------
    # Transmit path
    # ------------------------------------------------------------------

    def transmit(self, data: bytes, now: int) -> Optional[Tuple[bytes, int]]:
        """Carry one frame across the protected segment.

        Returns ``(delivered_bytes, handoff_ps)`` -- the bytes the next
        hop receives and the instant the receiver's resequencer hands
        them over -- or ``None`` when the frame is lost despite repair
        (outage, repair budget exhausted, or an unlucky bypass).
        """
        faults = self.faults
        # Release hold-buffer slots whose coalesced ACK has arrived.
        releases = self._releases
        while releases and releases[0] <= now:
            heapq.heappop(releases)

        if len(releases) >= self.hold_frames:
            # Hold buffer full: pass through unprotected rather than
            # stall the wire.  The host transport still covers the frame.
            self.bypassed.add()
            out = faults.process(data)
            if out is None:
                return None
            return out, self._handoff(now + self.propagation_ps, held_ok=True)

        self.protected.add()
        attempt_tx = now
        for attempt in range(self.max_repair + 1):
            outcome, out = faults.judge(data)
            if outcome == "down":
                # Outage: not the link layer's job (see module docstring).
                return None
            if outcome == "ok":
                arrival = attempt_tx + self.propagation_ps
                handoff = self._handoff(arrival, held_ok=attempt == 0)
                if attempt:
                    self.repaired.add()
                    self._trace("ll_handoff", now, (
                        ("attempts", attempt + 1),
                        ("handoff_ps", handoff),
                        ("held_ps", handoff - arrival),
                    ))
                heapq.heappush(
                    releases,
                    handoff + self.propagation_ps + self.ack_coalesce_ps,
                )
                if len(releases) > self.occupancy_peak:
                    self.occupancy_peak = len(releases)
                return data, handoff
            # Lost or corrupted: the receiver NACKs (immediately on a CRC
            # failure, after the gap timer on a silent drop) and the
            # sender retransmits from the hold buffer.
            self.nacks.add()
            self._trace("ll_nack", now, (
                ("reason", outcome), ("attempt", attempt),
            ))
            detect = 0 if outcome == "corrupt" else self.detect_ps
            attempt_tx += 2 * self.propagation_ps + detect + self.turnaround_ps
            if attempt < self.max_repair:
                self.retransmits.add()
                self._trace("ll_retransmit", now, (("attempt", attempt + 1),))
        self.gave_up.add()
        return None

    def _handoff(self, arrival_ps: int, held_ok: bool) -> int:
        """In-order handoff: clamp to the resequencing front."""
        handoff = arrival_ps
        if handoff < self._handoff_front_ps:
            handoff = self._handoff_front_ps
            self.handoff_held.add()
            if held_ok:
                # A clean frame held behind an earlier repair -- the
                # head-of-line cost of in-order handoff, worth a span of
                # its own (repaired frames emit ll_handoff above).
                self._trace("ll_handoff", arrival_ps, (
                    ("attempts", 1),
                    ("handoff_ps", handoff),
                    ("held_ps", handoff - arrival_ps),
                ))
        self._handoff_front_ps = handoff
        return handoff

    def _trace(self, kind: str, now: int, args: Tuple) -> None:
        if self._tracer is not None:
            self._tracer.instant(self._trace_ctx, kind, self.faults.label,
                                 now, args)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def stats(self) -> Dict[str, int]:
        """Merged into the direction's wire stats under ``"linklayer"``."""
        return {
            "protected": self.protected.value,
            "nacks": self.nacks.value,
            "retransmits": self.retransmits.value,
            "repaired": self.repaired.value,
            "gave_up": self.gave_up.value,
            "bypassed": self.bypassed.value,
            "handoff_held": self.handoff_held.value,
            "occupancy_peak": self.occupancy_peak,
        }
