"""End-to-end reliable delivery over lossy rack wires.

The paper puts PANIC under transports that survive loss (RDMA reliable
connections, DCQCN's loss-driven pacing); this package supplies the
minimal host-side version of that story so rack experiments keep their
delivery guarantees when :mod:`repro.faults.rack` makes the cables lie:

* :class:`ReliableTransport` -- a go-back-N sender/receiver pair living
  in host software above one NIC (per-flow sequence numbers, cumulative
  ACKs, RTO with exponential backoff and seeded jitter, bounded retries
  surfacing :class:`DeliveryFailed`, receiver-side duplicate
  suppression);
* :mod:`repro.reliability.rack` -- the rack workload wired through it
  (``reliable_rack_topology``), the subject of the chaos harness;
* :mod:`repro.reliability.chaos` -- seeded random fault plans plus the
  invariant checks (``no committed loss``, ``no duplicates``,
  ``mono == sharded``, ``replay determinism``) behind
  ``benchmarks/chaos/run_chaos.py`` and ``python -m repro chaos``.
"""

from repro.reliability.transport import (
    ACK,
    DATA,
    DeliveryFailed,
    ReliableTransport,
    default_rto_ps,
    parse_segment,
)

__all__ = [
    "ACK",
    "DATA",
    "DeliveryFailed",
    "ReliableTransport",
    "default_rto_ps",
    "parse_segment",
]
