"""End-to-end reliable delivery over lossy rack wires.

The paper puts PANIC under transports that survive loss (RDMA reliable
connections, DCQCN's loss-driven pacing); this package supplies the
minimal host-side version of that story so rack experiments keep their
delivery guarantees when :mod:`repro.faults.rack` makes the cables lie:

* :class:`ReliableTransport` -- a go-back-N sender/receiver pair living
  in host software above one NIC (per-flow sequence numbers, cumulative
  ACKs, RTO with exponential backoff and seeded jitter, bounded retries
  surfacing :class:`DeliveryFailed`, receiver-side duplicate
  suppression);
* :class:`SelectiveRepeatTransport` -- the upgrade: per-segment SACK
  blocks, out-of-order receiver buffering with in-order delivery, and
  an adaptive RTO from measured RTT (:class:`RttEstimator`, Karn's
  rule) in a finite wrapping sequence space;
* :mod:`repro.reliability.linklayer` -- LinkGuardian-style sub-RTT
  repair between adjacent hops, armed per wire via
  :meth:`repro.faults.plan.FaultPlan.link_local`, so most losses never
  reach the host timer at all;
* :mod:`repro.reliability.rack` -- the rack workload wired through
  either transport (``reliable_rack_topology``), the subject of the
  chaos harness;
* :mod:`repro.reliability.chaos` -- seeded random fault plans plus the
  invariant checks (``no committed loss``, ``no duplicates``,
  ``mono == sharded``, ``replay determinism``) behind
  ``benchmarks/chaos/run_chaos.py`` and ``python -m repro chaos``, now
  running each seed under every requested transport config
  (``gbn`` / ``sr`` / ``gbn+ll``).
"""

from repro.reliability.linklayer import LinkLayer
from repro.reliability.selective import (
    RttEstimator,
    SelectiveRepeatTransport,
    SEQ_SPACE,
    parse_sr_segment,
    seq_unwrap,
    seq_wrap,
)
from repro.reliability.transport import (
    ACK,
    DATA,
    DeliveryFailed,
    ReliableTransport,
    default_rto_ps,
    parse_segment,
)

__all__ = [
    "ACK",
    "DATA",
    "DeliveryFailed",
    "LinkLayer",
    "ReliableTransport",
    "RttEstimator",
    "SEQ_SPACE",
    "SelectiveRepeatTransport",
    "default_rto_ps",
    "parse_segment",
    "parse_sr_segment",
    "seq_unwrap",
    "seq_wrap",
]
