"""Host-side go-back-N reliable transport.

One :class:`ReliableTransport` per NIC plays both roles: sender for the
flows this host originates, receiver (cumulative-ACK generator plus
duplicate suppressor) for the flows arriving from peers.  It lives in
host software -- segments enter the NIC through the normal
``host.enqueue_tx`` doorbell path and come back out through the
interrupt-driven ``software_handler`` -- so the NIC pipeline under test
is exactly the one unreliable datagrams use.

Wire format (inside the UDP payload)::

    0       2     3      5      7              15
    +-------+-----+------+------+---------------+----------------+
    | magic | typ | src  | dst  |      seq      |  app payload   |
    +-------+-----+------+------+---------------+----------------+

``src``/``dst`` are rack NIC indices; for ``DATA`` ``seq`` is the
segment's per-flow sequence number, for ``ACK`` it is the *cumulative*
acknowledgement -- "I have received every sequence number below this".

Loss recovery is classic go-back-N: one retransmission timer per flow;
on expiry the whole outstanding window is resent and the RTO doubles
(bounded by ``rto_max_ps``) with seeded jitter so replayed runs stay
bit-identical.  ``max_retries`` consecutive expiries without progress
abort the flow and surface a :class:`DeliveryFailed` record -- bounded
retries guarantee the event heap drains even over a permanently cut
wire.  Corruption needs no extra machinery: the NICs run with checksum
verification on, so a corrupted segment dies at RMT classification and
the transport sees it as loss.
"""

from __future__ import annotations

import struct
from typing import Callable, Dict, List, NamedTuple, Optional, Tuple

from repro.packet.headers import RACK_TAG_BYTES, RACK_TAG_UDP_PORT
from repro.sim.clock import US
from repro.sim.stats import Counter

#: Magic marking a reliability segment; anything else in the UDP payload
#: is ignored (defensive against corrupted or foreign frames).
MAGIC = 0x5EAB
#: Segment types.
DATA = 0
ACK = 1

_HEADER = struct.Struct("!HBHHQ")  # magic, type, src, dst, seq
HEADER_BYTES = _HEADER.size

#: Defaults; window sizes the outstanding go-back-N in-flight segments.
DEFAULT_WINDOW = 16
DEFAULT_MAX_RETRIES = 8
DEFAULT_JITTER = 0.1


def pack_segment(seg_type: int, src: int, dst: int, seq: int,
                 payload: bytes = b"") -> bytes:
    """Serialize one reliability segment (header + app payload)."""
    return _HEADER.pack(MAGIC, seg_type, src, dst, seq) + payload


def parse_segment(
    payload: bytes,
) -> Optional[Tuple[int, int, int, int, bytes]]:
    """Parse a UDP payload; None unless it starts with a valid header.

    Returns ``(type, src, dst, seq, rest)``.  Ethernet zero-padding after
    ``rest`` is harmless -- callers treat app payload as opaque.
    """
    if len(payload) < HEADER_BYTES:
        return None
    magic, seg_type, src, dst, seq = _HEADER.unpack_from(payload)
    if magic != MAGIC or seg_type not in (DATA, ACK):
        return None
    return seg_type, src, dst, seq, payload[HEADER_BYTES:]


def segment_offset(packet) -> int:
    """Offset of the transport segment inside a received frame.

    Ethernet (14) + IPv4 (20) + UDP (8) = 42 for the rack frame shapes
    this library builds; tag-identified frames (``flow_id="tag"`` racks,
    recognized by their UDP destination port) lead the payload with a
    flow-tag shim that is not part of the segment.
    """
    if int.from_bytes(packet.data[36:38], "big") == RACK_TAG_UDP_PORT:
        return 42 + RACK_TAG_BYTES
    return 42


def default_rto_ps(propagation_ps: int) -> int:
    """Initial RTO for a rack wire: a few propagation round trips plus
    generous headroom for the NIC pipeline, incast queueing, and the
    interrupt-driven host software delay (~2 us per side)."""
    return 8 * propagation_ps + 30 * US


class DeliveryFailed(NamedTuple):
    """A flow gave up: ``max_retries`` RTO expiries without progress.

    Covers every unacknowledged sequence number the sender will never
    deliver: ``first_seq`` (the flow's cumulative-ACK front at abort
    time) through the last payload offered before the report was read.
    """

    dst: int
    first_seq: int
    at_ps: int
    retries: int


class _TxFlow:
    """Sender state for one destination."""

    __slots__ = ("dst", "payloads", "base", "next_seq", "rto_ps",
                 "retries", "timer_gen", "aborted", "completed_ps")

    def __init__(self, dst: int):
        self.dst = dst
        self.payloads: List[bytes] = []
        self.base = 0        # lowest unacknowledged sequence number
        self.next_seq = 0    # next never-sent sequence number
        self.rto_ps = 0      # current (backed-off) RTO
        self.retries = 0     # consecutive expiries without progress
        self.timer_gen = 0   # invalidates stale timer events
        self.aborted = False
        self.completed_ps: Optional[int] = None  # last payload acked at


class ReliableTransport:
    """Go-back-N sender + receiver for one NIC's host software.

    Parameters
    ----------
    nic:
        The :class:`~repro.core.panic.PanicNic` to speak through.  The
        transport installs itself as ``nic.host.software_handler`` and
        as ``nic.transport`` (surfacing ``stats()["reliability"]``).
    index:
        This host's rack NIC index (the ``src`` of every segment).
    frame_builder:
        ``frame_builder(dst, udp_payload) -> bytes`` -- builds the full
        Ethernet frame addressed to peer ``dst``.  Supplied by the
        workload, so any experiment that cables two NICs can reuse the
        transport whatever its MAC/IP/DSCP scheme.
    rng:
        A dedicated seeded stream for RTO jitter (fork it from the
        workload seed; never share a stream the simulation draws from).
    on_deliver:
        ``on_deliver(src, seq, app_payload, queue)`` called exactly once
        per in-order segment -- duplicates are suppressed before it.
    """

    def __init__(
        self,
        nic,
        index: int,
        *,
        frame_builder: Callable[[int, bytes], bytes],
        rng,
        rto_initial_ps: int,
        rto_max_ps: Optional[int] = None,
        window: int = DEFAULT_WINDOW,
        max_retries: int = DEFAULT_MAX_RETRIES,
        jitter: float = DEFAULT_JITTER,
        on_deliver: Optional[Callable[[int, int, bytes, int], None]] = None,
        tx_queue: int = 0,
        accept_dst: Optional[set] = None,
        reply_as: Optional[int] = None,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if rto_initial_ps <= 0:
            raise ValueError(f"rto_initial_ps must be > 0, got {rto_initial_ps}")
        if not 0.0 <= jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {jitter}")
        self.nic = nic
        self.sim = nic.sim
        self.index = index
        # Direct-server-return serving (repro.lb): a backend accepts
        # segments addressed to the virtual index too (``accept_dst``)
        # and stamps its ACKs with the virtual index (``reply_as``), so
        # clients talk to the VIP and never learn which backend served
        # them.
        self.accept_dst = frozenset(accept_dst or ())
        self.reply_as = self.index if reply_as is None else reply_as
        self.frame_builder = frame_builder
        self.rng = rng
        self.window = window
        self.rto_initial_ps = rto_initial_ps
        self.rto_max_ps = rto_max_ps or 16 * rto_initial_ps
        self.max_retries = max_retries
        self.jitter = jitter
        self.on_deliver = on_deliver
        self.tx_queue = tx_queue

        self._tx: Dict[int, _TxFlow] = {}
        self._rx_expected: Dict[int, int] = {}  # src -> next in-order seq
        self.failures: List[DeliveryFailed] = []

        label = f"{nic.name}.rel"
        self.data_sent = Counter(f"{label}.data_sent")
        self.retransmits = Counter(f"{label}.retransmits")
        self.rto_fired = Counter(f"{label}.rto_fired")
        self.acks_sent = Counter(f"{label}.acks_sent")
        self.acks_received = Counter(f"{label}.acks_received")
        self.dup_acks = Counter(f"{label}.dup_acks")
        self.delivered = Counter(f"{label}.delivered")
        self.duplicates_suppressed = Counter(f"{label}.dups_suppressed")
        self.out_of_order_dropped = Counter(f"{label}.ooo_dropped")
        self.parse_rejects = Counter(f"{label}.parse_rejects")

        # Telemetry: control events land on a dedicated flow context,
        # allocated at construction so the trace id is mode-independent.
        self._trace_ctx = None
        self._tracer = None
        if nic.telemetry is not None:
            self._tracer = nic.telemetry.tracer
            self._trace_ctx = self._tracer.flow_ctx()

        nic.host.software_handler = self._on_host_rx
        nic.transport = self

    # ------------------------------------------------------------------
    # Sender
    # ------------------------------------------------------------------

    def send(self, dst: int, payload: bytes) -> None:
        """Offer one application payload to flow ``dst``.

        Transmitted immediately if the go-back-N window has room,
        otherwise once earlier segments are acknowledged.
        """
        flow = self._tx.get(dst)
        if flow is None:
            flow = self._tx[dst] = _TxFlow(dst)
            flow.rto_ps = self.rto_initial_ps
        flow.payloads.append(bytes(payload))
        flow.completed_ps = None
        self._pump(flow)

    def _pump(self, flow: _TxFlow) -> None:
        """Send everything the window allows; keep the timer honest."""
        if flow.aborted:
            return
        limit = flow.base + self.window
        while flow.next_seq < limit and flow.next_seq < len(flow.payloads):
            self._transmit(flow, flow.next_seq)
            flow.next_seq += 1
            self.data_sent.add()
        if flow.base < flow.next_seq:
            self._arm_timer(flow)

    def _transmit(self, flow: _TxFlow, seq: int) -> None:
        segment = pack_segment(DATA, self.index, flow.dst, seq,
                               flow.payloads[seq])
        self.nic.host.enqueue_tx(
            self.frame_builder(flow.dst, segment), self.tx_queue
        )

    def _arm_timer(self, flow: _TxFlow) -> None:
        flow.timer_gen += 1
        self.sim.schedule_at(
            self.sim.now + flow.rto_ps, self._on_timer, flow, flow.timer_gen
        )

    def _on_timer(self, flow: _TxFlow, gen: int) -> None:
        if gen != flow.timer_gen or flow.aborted or flow.base >= flow.next_seq:
            return  # stale timer, or nothing outstanding anymore
        self.rto_fired.add()
        flow.retries += 1
        self._trace("rel_rto", (("dst", flow.dst), ("rto_ps", flow.rto_ps),
                                ("retries", flow.retries)))
        if flow.retries > self.max_retries:
            self._abort(flow)
            return
        # Exponential backoff with seeded jitter: doubling alone would
        # fire every sender's timer at the same instant forever.
        backoff = min(flow.rto_ps * 2, self.rto_max_ps)
        flow.rto_ps = max(1, int(backoff * (
            1.0 + self.rng.uniform(-self.jitter, self.jitter)
        )))
        # Go-back-N: resend the entire outstanding window.
        for seq in range(flow.base, flow.next_seq):
            self._transmit(flow, seq)
            self.retransmits.add()
        self._trace("rel_retransmit", (("dst", flow.dst),
                                       ("seq_from", flow.base),
                                       ("seq_to", flow.next_seq - 1)))
        self._arm_timer(flow)

    def _abort(self, flow: _TxFlow) -> None:
        flow.aborted = True
        flow.timer_gen += 1
        self.failures.append(DeliveryFailed(
            dst=flow.dst, first_seq=flow.base, at_ps=self.sim.now,
            retries=flow.retries,
        ))
        self._trace("rel_abort", (("dst", flow.dst),
                                  ("first_seq", flow.base)))

    def _on_ack(self, src: int, ack_no: int) -> None:
        flow = self._tx.get(src)
        if flow is None or flow.aborted:
            return
        if ack_no <= flow.base:
            self.dup_acks.add()
            return
        self.acks_received.add()
        flow.base = min(ack_no, flow.next_seq)
        flow.retries = 0
        flow.rto_ps = self.rto_initial_ps
        if flow.base >= flow.next_seq and flow.next_seq >= len(flow.payloads):
            flow.timer_gen += 1  # flow complete: disarm
            flow.completed_ps = self.sim.now
        self._pump(flow)

    # ------------------------------------------------------------------
    # Receiver
    # ------------------------------------------------------------------

    def _on_host_rx(self, packet, queue: int) -> None:
        parsed = parse_segment(packet.data[segment_offset(packet):])
        if parsed is None:
            self.parse_rejects.add()
            return
        seg_type, src, dst, seq, payload = parsed
        if dst != self.index and dst not in self.accept_dst:
            self.parse_rejects.add()
            return
        if seg_type == ACK:
            self._on_ack(src, seq)
            return
        expected = self._rx_expected.get(src, 0)
        if seq == expected:
            self._rx_expected[src] = expected + 1
            self.delivered.add()
            if self.on_deliver is not None:
                self.on_deliver(src, seq, payload, queue)
        elif seq < expected:
            self.duplicates_suppressed.add()
        else:
            # Go-back-N receiver: no reorder buffer; the sender will
            # resend from `expected` on its next timeout.
            self.out_of_order_dropped.add()
        # Always (re-)advertise the cumulative front, so lost ACKs heal.
        ack = pack_segment(ACK, self.reply_as, src, self._rx_expected.get(src, 0))
        self.nic.host.enqueue_tx(self.frame_builder(src, ack), self.tx_queue)
        self.acks_sent.add()

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------

    def _trace(self, kind: str, args: Tuple) -> None:
        if self._tracer is not None:
            self._tracer.instant(self._trace_ctx, kind,
                                 f"{self.nic.name}.reliability",
                                 self.sim.now, args)

    def stats(self) -> Dict[str, int]:
        """The ``stats()["reliability"]`` block of the owning NIC."""
        return {
            "data_sent": self.data_sent.value,
            "retransmits": self.retransmits.value,
            "rto_fired": self.rto_fired.value,
            "acks_sent": self.acks_sent.value,
            "acks_received": self.acks_received.value,
            "dup_acks": self.dup_acks.value,
            "delivered": self.delivered.value,
            "duplicates_suppressed": self.duplicates_suppressed.value,
            "out_of_order_dropped": self.out_of_order_dropped.value,
            "parse_rejects": self.parse_rejects.value,
            "delivery_failures": len(self.failures),
        }

    def flow_report(self) -> Dict[int, Dict[str, int]]:
        """Per-destination accounting: ``sent == acked + failed`` holds
        for every flow once the simulation drains (the chaos harness's
        accounting invariant)."""
        out: Dict[int, Dict[str, int]] = {}
        for dst, flow in sorted(self._tx.items()):
            sent = len(flow.payloads)
            acked = min(flow.base, sent)
            out[dst] = {
                "sent": sent,
                "acked": acked,
                "failed": sent - acked,
                "aborted": int(flow.aborted),
            }
        return out

    def fct_report(self) -> Dict[int, int]:
        """Flow completion times: dst -> instant the last offered
        payload was cumulatively acknowledged (completed flows only)."""
        return {
            dst: flow.completed_ps
            for dst, flow in sorted(self._tx.items())
            if flow.completed_ps is not None
        }

    def failure_report(self) -> List[tuple]:
        """Picklable ``DeliveryFailed`` records."""
        return [tuple(f) for f in self.failures]
