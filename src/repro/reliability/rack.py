"""The rack workload rebuilt on reliable delivery.

Same cabling, DSCP flow encoding, and traffic patterns as
:mod:`repro.workloads.rack`, but every flow runs through a
:class:`~repro.reliability.transport.ReliableTransport`, and every NIC
verifies checksums so a wire-corrupted frame dies at RMT classification
(making corruption indistinguishable from loss, which the transport
already heals).  This is the workload the chaos harness breaks.

``build_reliable_rack_nic`` is module-level and picklable by reference,
as the shard workers require.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.core.config import PanicConfig
from repro.core.panic import PanicNic
from repro.core.topology import LinkSpec, NicSpec, RackTopology
from repro.faults.monitor import attach_health_monitor
from repro.packet.builder import build_udp_frame
from repro.reliability.selective import (
    SR_HEADER_BYTES,
    SelectiveRepeatTransport,
)
from repro.reliability.transport import (
    DEFAULT_MAX_RETRIES,
    DEFAULT_WINDOW,
    HEADER_BYTES,
    ReliableTransport,
    default_rto_ps,
)
from repro.sim.clock import US
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.workloads.rack import MAX_RACK_NICS, flow_dscp, rack_port
from repro.workloads.wire import DEFAULT_PROPAGATION_PS

#: Transport selection vocabulary for ``build_reliable_rack_nic``.
TRANSPORTS = ("gbn", "sr")

#: When failover is armed, stop the health monitor at this instant so
#: the event heap drains (the periodic tick would otherwise keep
#: ``sim.run()`` alive forever).  Comfortably past the chaos horizon
#: (100 us) plus worst-case detection latency (timeout + period).
DEFAULT_MONITOR_STOP_PS = 150 * US


def build_reliable_rack_nic(
    sim: Simulator,
    name: str,
    *,
    index: int,
    n_nics: int,
    frames: int,
    gap_ps: int = 2 * US,
    payload_bytes: int = 256,
    pattern: str = "symmetric",
    seed: int = 0,
    fast_path: bool = True,
    telemetry=None,
    propagation_ps: int = DEFAULT_PROPAGATION_PS,
    window: int = DEFAULT_WINDOW,
    max_retries: int = DEFAULT_MAX_RETRIES,
    transport: str = "gbn",
    failover: bool = False,
    monitor_stop_ps: int = DEFAULT_MONITOR_STOP_PS,
) -> Tuple[PanicNic, Callable[[], dict]]:
    """Build rack node ``index`` of ``n_nics`` with a reliable transport.

    ``transport`` selects the host protocol: ``"gbn"`` (go-back-N,
    fixed RTO) or ``"sr"`` (selective repeat with SACK and adaptive
    RTO).  With ``failover`` the NIC carries a spare checksum lane
    (``checksum1``), declares it the backup, and runs a
    :class:`~repro.faults.monitor.HealthMonitor` over the primary --
    so a chaos-crashed checksum engine costs a few microseconds of
    detection instead of the whole flow.  The monitor is stopped at
    ``monitor_stop_ps`` so the event heap drains.

    Returns ``(nic, report)``; ``report()`` extends the plain rack form
    (``stats``/``deliveries``/``sent``) with ``tx_flows`` (per-flow
    ``sent``/``acked``/``failed`` accounting), ``fct`` (per-flow
    completion instants), and ``failures``
    (:class:`~repro.reliability.transport.DeliveryFailed` tuples).
    """
    if pattern not in ("symmetric", "fanin"):
        raise ValueError(f"unknown rack pattern {pattern!r}")
    if transport not in TRANSPORTS:
        raise ValueError(
            f"unknown transport {transport!r}; have {TRANSPORTS}")
    config = PanicConfig(
        ports=n_nics - 1,
        offloads=("checksum", "checksum1") if failover else ("checksum",),
        seed=seed + index,
        fast_path=fast_path,
        telemetry=telemetry,
        verify_checksums=True,
    )
    nic = PanicNic(sim, config, name=name)
    if failover:
        nic.set_backup("checksum", "checksum1")
        monitor = attach_health_monitor(nic, engines=("checksum",))
        monitor.start()
        sim.schedule_at(monitor_stop_ps, monitor.stop)

    peers = [peer for peer in range(n_nics) if peer != index]
    for peer in peers:
        # Routes and slack for ALL peers regardless of pattern: ACKs
        # flow against the data direction, so even a pure fanin receiver
        # transmits to every sender.
        nic.control.route_dscp_tx(
            flow_dscp(index, peer, n_nics),
            chain=["checksum"],
            egress_port=rack_port(index, peer),
        )
        nic.control.set_dscp_slack(
            flow_dscp(peer, index, n_nics), (1 + peer) * 200 * US
        )

    def frame_builder(dst: int, segment: bytes) -> bytes:
        return build_udp_frame(
            src_mac="02:00:00:00:00:%02x" % (index + 1),
            dst_mac="02:00:00:00:00:%02x" % (dst + 1),
            src_ip=f"10.0.{index}.1",
            dst_ip=f"10.0.{dst}.1",
            src_port=40000 + index,
            dst_port=9000,
            payload=segment,
            dscp=flow_dscp(index, dst, n_nics),
        )

    deliveries = []

    def on_deliver(src: int, seq: int, payload: bytes, queue: int) -> None:
        deliveries.append((src, seq, sim.now, queue))

    transport_cls = (SelectiveRepeatTransport if transport == "sr"
                     else ReliableTransport)
    proto = transport_cls(
        nic, index,
        frame_builder=frame_builder,
        rng=SeededRng(seed + index).fork("reliability"),
        rto_initial_ps=default_rto_ps(propagation_ps),
        window=window,
        max_retries=max_retries,
        on_deliver=on_deliver,
    )

    if pattern == "symmetric":
        targets = peers
    else:  # fanin: everyone streams at NIC 0
        targets = [0] if index != 0 else []

    header_bytes = SR_HEADER_BYTES if transport == "sr" else HEADER_BYTES
    pad = bytes(max(0, payload_bytes - header_bytes))
    sent = 0
    for dst in targets:
        for seq in range(frames):
            sim.schedule_at(seq * gap_ps, proto.send, dst, pad)
            sent += 1

    total_sent = sent

    def report() -> dict:
        rep = {
            "stats": nic.stats(),
            "deliveries": sorted(deliveries),
            "sent": total_sent,
            "tx_flows": proto.flow_report(),
            "fct": proto.fct_report(),
            "failures": proto.failure_report(),
        }
        if hasattr(proto, "rtt_report"):
            rep["rtt"] = proto.rtt_report()
        if nic.telemetry is not None:
            rep["trace"] = nic.telemetry.trace_report()
        return rep

    return nic, report


def reliable_rack_topology(
    nics: int = 4,
    pattern: str = "symmetric",
    frames: int = 40,
    gap_ps: int = 2 * US,
    payload_bytes: int = 256,
    propagation_ps: int = DEFAULT_PROPAGATION_PS,
    seed: int = 0,
    fast_path: bool = True,
    telemetry=None,
    window: int = DEFAULT_WINDOW,
    max_retries: int = DEFAULT_MAX_RETRIES,
    transport: str = "gbn",
    failover: bool = False,
) -> RackTopology:
    """An all-pairs-cabled rack whose flows run ``transport`` end to
    end (go-back-N by default, selective repeat with ``"sr"``)."""
    if not 2 <= nics <= MAX_RACK_NICS:
        raise ValueError(
            f"rack supports 2..{MAX_RACK_NICS} NICs (DSCP flow encoding), "
            f"got {nics}"
        )
    specs = [
        NicSpec(
            f"nic{i}",
            build_reliable_rack_nic,
            {
                "index": i,
                "n_nics": nics,
                "frames": frames,
                "gap_ps": gap_ps,
                "payload_bytes": payload_bytes,
                "pattern": pattern,
                "seed": seed,
                "fast_path": fast_path,
                "telemetry": telemetry,
                "propagation_ps": propagation_ps,
                "window": window,
                "max_retries": max_retries,
                "transport": transport,
                "failover": failover,
            },
        )
        for i in range(nics)
    ]
    links = [
        LinkSpec(
            f"nic{i}", f"nic{j}",
            port_a=rack_port(i, j),
            port_b=rack_port(j, i),
            propagation_ps=propagation_ps,
        )
        for i in range(nics)
        for j in range(i + 1, nics)
    ]
    return RackTopology(specs, links)
