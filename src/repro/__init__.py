"""PANIC: a programmable NIC architected as a programmable switch.

A behavioural reproduction of Stephens, Akella & Swift, *"Your
Programmable NIC Should be a Programmable Switch"*, HotNets-XVII (2018).

Quick start::

    from repro import PanicNic, PanicConfig, Simulator
    from repro.packet import KvRequest, KvOpcode, build_kv_request_frame

    sim = Simulator()
    nic = PanicNic(sim, PanicConfig(ports=1))
    nic.control.enable_kv_cache()
    nic.offload("kvcache").cache_put(b"hot", b"value")
    nic.inject(build_kv_request_frame(KvRequest(KvOpcode.GET, 1, 1, b"hot")))
    sim.run()
    assert len(nic.transmitted) == 1  # answered without touching the CPU

Packages:

* :mod:`repro.core`      -- the PANIC NIC (the paper's contribution)
* :mod:`repro.baselines` -- pipeline / manycore / RMT-only NICs (Fig. 2)
* :mod:`repro.engines`   -- offload engines (IPSec, compression, KV
  cache, RDMA, DPI, checksum, DMA, PCIe, Ethernet, RMT)
* :mod:`repro.noc`       -- the lossless 2D-mesh on-chip network
* :mod:`repro.rmt`       -- the match+action pipeline substrate
* :mod:`repro.sched`     -- PIFO queues and slack policies
* :mod:`repro.packet`    -- byte-accurate protocol stack
* :mod:`repro.workloads` -- traffic generators and the KVS workload
* :mod:`repro.analysis`  -- Table 2/3 analytical models, reporting
* :mod:`repro.sim`       -- the discrete-event kernel
"""

from repro.core import Host, HostKvServer, PanicConfig, PanicNic
from repro.sim import Simulator

__version__ = "0.1.0"

__all__ = [
    "Host",
    "HostKvServer",
    "PanicConfig",
    "PanicNic",
    "Simulator",
    "__version__",
]
