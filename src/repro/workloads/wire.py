"""A point-to-point external wire connecting two NICs.

Lets experiments build the full picture the paper's introduction sketches
-- clients talking to a PANIC-equipped server across a network -- by
cabling the TX side of one NIC to the RX side of another, with a
configurable one-way propagation delay (rack-local ~500 ns, cross-DC
~micro/milliseconds for the WAN tenants of section 2.2).

Both ends expose the common NIC surface this library uses everywhere
(``on_transmit`` to observe egress, ``inject`` to offer ingress), so any
pair of PANIC/baseline NICs can be cabled.
"""

from __future__ import annotations

from typing import Optional

from repro.packet.packet import Packet, PacketMetadata
from repro.sim.clock import NS
from repro.sim.kernel import Component, Simulator
from repro.sim.stats import Counter

#: Rack-local one-way propagation (a few meters of fibre + PHY).
DEFAULT_PROPAGATION_PS = 500 * NS


class Wire(Component):
    """A full-duplex cable between two NICs."""

    def __init__(
        self,
        sim: Simulator,
        nic_a,
        nic_b,
        name: str = "wire",
        propagation_ps: int = DEFAULT_PROPAGATION_PS,
        port_a: int = 0,
        port_b: int = 0,
    ):
        super().__init__(sim, name)
        if propagation_ps < 0:
            raise ValueError(f"{name}: negative propagation delay")
        self.nic_a = nic_a
        self.nic_b = nic_b
        self.propagation_ps = propagation_ps
        self.port_a = port_a
        self.port_b = port_b
        self.a_to_b = Counter(f"{name}.a_to_b")
        self.b_to_a = Counter(f"{name}.b_to_a")
        nic_a.on_transmit(self._from_a)
        nic_b.on_transmit(self._from_b)

    def _refresh(self, packet: Packet) -> Packet:
        """A frame entering a new NIC is a new packet life: fresh
        metadata, same bytes."""
        fresh = Packet(packet.data, packet.kind)
        fresh.meta.created_ps = self.now
        fresh.meta.tenant = packet.meta.tenant
        # Keep cross-NIC correlation for experiments.
        ctx = packet.meta.annotations.get("request_ctx")
        if ctx is not None:
            fresh.meta.annotations["request_ctx"] = ctx
        e2e = packet.meta.annotations.get("e2e_t0")
        if e2e is not None:
            fresh.meta.annotations["e2e_t0"] = e2e
        return fresh

    def _from_a(self, packet: Packet) -> None:
        if (packet.meta.egress_port or 0) != self.port_a:
            return  # a different cable serves that port
        self.a_to_b.add()
        self.schedule(
            self.propagation_ps, self._deliver, self.nic_b, self.port_b,
            self._refresh(packet),
        )

    def _from_b(self, packet: Packet) -> None:
        if (packet.meta.egress_port or 0) != self.port_b:
            return
        self.b_to_a.add()
        self.schedule(
            self.propagation_ps, self._deliver, self.nic_a, self.port_a,
            self._refresh(packet),
        )

    @staticmethod
    def _deliver(nic, port: int, packet: Packet) -> None:
        nic.inject(packet, port)
