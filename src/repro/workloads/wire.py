"""A point-to-point external wire connecting two NICs.

Lets experiments build the full picture the paper's introduction sketches
-- clients talking to a PANIC-equipped server across a network -- by
cabling the TX side of one NIC to the RX side of another, with a
configurable one-way propagation delay (rack-local ~500 ns, cross-DC
~micro/milliseconds for the WAN tenants of section 2.2).

Both ends expose the common NIC surface this library uses everywhere
(``on_transmit`` to observe egress, ``inject`` to offer ingress), so any
pair of PANIC/baseline NICs can be cabled.

:class:`ShardBoundary` is the sharded-execution variant (see
:mod:`repro.sim.shard`): one *half* of a wire whose far end lives in
another worker process.  Egress frames are captured into per-window
batches of picklable :class:`PacketCapsule` records instead of being
scheduled locally; ingress capsules received at a window barrier are
scheduled for delivery at exactly the timestamp the monolithic
:class:`Wire` would have used, so the sharded run stays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.packet.packet import MessageKind, Packet
from repro.sim.clock import NS
from repro.sim.kernel import Component, Simulator
from repro.sim.stats import Counter

#: Rack-local one-way propagation (a few meters of fibre + PHY).
DEFAULT_PROPAGATION_PS = 500 * NS


class LinkFaults:
    """Fault state for one transmit direction of an external wire.

    Holds the seeded Bernoulli loss model (armed by a ``WIRE_LOSS``
    fault event) and the scheduled-outage flag (``WIRE_DOWN``/
    ``WIRE_UP``).  Both :class:`Wire` directions and each
    :class:`ShardBoundary` own one, and both call :meth:`process` at
    *transmit* time -- the one instant that happens in identical
    per-direction FIFO order in monolithic and sharded execution, so
    the RNG draw sequence (and therefore every drop and bit flip) is
    bit-identical at any worker count.
    """

    __slots__ = ("label", "down", "drop_p", "corrupt_p", "rng",
                 "offered", "forwarded", "loss_drops", "corruptions",
                 "down_drops", "linklayer")

    def __init__(self, label: str):
        #: Execution-mode-independent name used in stats and telemetry.
        self.label = label
        self.down = False
        self.drop_p = 0.0
        self.corrupt_p = 0.0
        self.rng = None
        #: Optional :class:`~repro.reliability.linklayer.LinkLayer`
        #: repairing this direction sub-RTT (armed by WIRE_LINKLAYER).
        self.linklayer = None
        self.offered = Counter(f"{label}.offered")
        self.forwarded = Counter(f"{label}.forwarded")
        self.loss_drops = Counter(f"{label}.loss_drops")
        self.corruptions = Counter(f"{label}.corruptions")
        self.down_drops = Counter(f"{label}.down_drops")

    def set_loss(self, drop_p: float, corrupt_p: float, rng) -> None:
        """Arm (or clear, with zero probabilities) the loss model.

        ``rng`` must be a fork derived purely from the fault plan's seed
        and this direction's stable name -- never a stream the
        simulation itself draws from.
        """
        self.drop_p = drop_p
        self.corrupt_p = corrupt_p
        self.rng = rng if (drop_p or corrupt_p) else None

    def judge(self, data: bytes) -> Tuple[str, Optional[bytes]]:
        """Pass ``data`` through the faulty segment, naming the outcome.

        Returns ``(outcome, payload)`` where ``outcome`` is ``"ok"``
        (payload unchanged), ``"corrupt"`` (payload with a flipped bit),
        ``"drop"`` (Bernoulli loss, payload None), or ``"down"`` (outage,
        payload None).  The link layer keys its NACK/repair model off the
        outcome; :meth:`process` collapses it back to bytes-or-None.
        """
        self.offered.add()
        if self.down:
            self.down_drops.add()
            return "down", None
        rng = self.rng
        if rng is not None:
            if rng.random() < self.drop_p:
                self.loss_drops.add()
                return "drop", None
            if self.corrupt_p and rng.random() < self.corrupt_p:
                bit = rng.randint(0, len(data) * 8 - 1)
                corrupted = bytearray(data)
                corrupted[bit >> 3] ^= 1 << (bit & 7)
                self.corruptions.add()
                self.forwarded.add()
                return "corrupt", bytes(corrupted)
        self.forwarded.add()
        return "ok", data

    def process(self, data: bytes) -> Optional[bytes]:
        """Pass ``data`` through the faulty segment.

        Returns None when the frame is lost (outage or Bernoulli drop),
        the corrupted bytes when a bit flips, or ``data`` unchanged.
        """
        return self.judge(data)[1]

    def stats(self) -> Dict[str, int]:
        out = {
            "offered": self.offered.value,
            "forwarded": self.forwarded.value,
            "loss_drops": self.loss_drops.value,
            "corruptions": self.corruptions.value,
            "down_drops": self.down_drops.value,
        }
        if self.linklayer is not None:
            out["linklayer"] = self.linklayer.stats()
        return out


def arm_linklayer(faults: LinkFaults, nic, propagation_ps: int,
                  params: dict) -> None:
    """Attach a :class:`~repro.reliability.linklayer.LinkLayer` to one
    transmit direction (the WIRE_LINKLAYER arming path).

    ``nic`` is the *transmitting* NIC: its tracer (when telemetry is on)
    records the ``ll_*`` repair instants on a flow context of its own,
    exactly like the host transport's ``rel_*`` instants.  Re-arming
    replaces the previous link layer (fresh counters and hold buffer).
    """
    from repro.reliability.linklayer import LinkLayer

    tracer = ctx = None
    telemetry = getattr(nic, "telemetry", None)
    if telemetry is not None:
        tracer = telemetry.tracer
        ctx = tracer.flow_ctx()
    faults.linklayer = LinkLayer(
        faults, propagation_ps, tracer=tracer, trace_ctx=ctx, **params
    )


def _trace_wire_drop(nic, packet: Packet, label: str, now: int,
                     reason: str) -> None:
    """Record a traced packet vanishing on an external wire.

    ``label`` is the :class:`LinkFaults` label, identical between
    execution modes, so traced runs stay mono==sharded comparable.
    """
    telemetry = getattr(nic, "telemetry", None)
    if telemetry is None:
        return
    ctx = packet.meta.annotations.get("__trace__")
    if ctx is not None:
        telemetry.tracer.instant(ctx, "ext_wire_drop", label, now,
                                 (("reason", reason),))


def _refresh_packet(
    data: bytes,
    kind: MessageKind,
    created_ps: int,
    tenant: Optional[int],
    request_ctx: Any,
    e2e_t0: Any,
    int_state: Any = None,
) -> Packet:
    """A frame entering a new NIC is a new packet life: fresh metadata,
    same bytes.  Shared by :class:`Wire` and :class:`ShardBoundary` so
    both execution modes hand the receiving NIC an identical packet.

    ``int_state`` is the side-channel INT hop stack (a plain tuple of
    records, see :mod:`repro.telemetry.int_`); the receiving NIC's
    ``inject`` normalizes it into live per-packet state.  In-band INT
    stacks travel inside ``data`` and need no side-channel."""
    fresh = Packet(data, kind)
    fresh.meta.created_ps = created_ps
    fresh.meta.tenant = tenant
    if request_ctx is not None:
        fresh.meta.annotations["request_ctx"] = request_ctx
    if e2e_t0 is not None:
        fresh.meta.annotations["e2e_t0"] = e2e_t0
    if int_state is not None:
        fresh.meta.annotations["__int__"] = int_state
    return fresh


class Wire(Component):
    """A full-duplex cable between two NICs.

    Perfect by default; a rack fault plan (``WIRE_LOSS``/``WIRE_DOWN``,
    see :mod:`repro.faults.rack`) arms the per-direction
    :class:`LinkFaults` via :meth:`set_loss`/:meth:`set_down`.
    ``fault_labels`` overrides the labels used for loss accounting and
    telemetry so a sharded run's :class:`ShardBoundary` halves can
    report under identical names.
    """

    def __init__(
        self,
        sim: Simulator,
        nic_a,
        nic_b,
        name: str = "wire",
        propagation_ps: int = DEFAULT_PROPAGATION_PS,
        port_a: int = 0,
        port_b: int = 0,
        fault_labels: Optional[Dict[str, str]] = None,
    ):
        super().__init__(sim, name)
        if propagation_ps < 0:
            raise ValueError(f"{name}: negative propagation delay")
        self.nic_a = nic_a
        self.nic_b = nic_b
        self.propagation_ps = propagation_ps
        self.port_a = port_a
        self.port_b = port_b
        self.a_to_b = Counter(f"{name}.a_to_b")
        self.b_to_a = Counter(f"{name}.b_to_a")
        labels = fault_labels or {}
        self.faults: Dict[str, LinkFaults] = {
            "a": LinkFaults(labels.get("a", f"{name}.a")),
            "b": LinkFaults(labels.get("b", f"{name}.b")),
        }
        nic_a.on_transmit(self._from_a)
        nic_b.on_transmit(self._from_b)

    # -- fault arming (repro.faults.rack) -------------------------------

    def set_loss(self, end: str, drop_p: float, corrupt_p: float,
                 rng) -> None:
        """Arm Bernoulli loss on the direction transmitting at ``end``."""
        self.faults[end].set_loss(drop_p, corrupt_p, rng)

    def set_down(self, down: bool) -> None:
        """Cut (or restore) the whole cable, both directions."""
        self.faults["a"].down = down
        self.faults["b"].down = down

    def set_linklayer(self, end: str, params: dict) -> None:
        """Arm sub-RTT link-local repair on the direction transmitting
        at ``end`` (the ``WIRE_LINKLAYER`` fault kind)."""
        nic = self.nic_a if end == "a" else self.nic_b
        arm_linklayer(self.faults[end], nic, self.propagation_ps, params)

    def wire_stats(self) -> Dict[str, Dict[str, int]]:
        """Per-direction fault accounting, keyed by the fault label."""
        return {f.label: f.stats() for f in self.faults.values()}

    # -- transfer --------------------------------------------------------

    def _from_a(self, packet: Packet) -> None:
        if (packet.meta.egress_port or 0) != self.port_a:
            return  # a different cable serves that port
        self.a_to_b.add()
        self._transfer(packet, self.faults["a"], self.nic_a,
                       self.nic_b, self.port_b)

    def _from_b(self, packet: Packet) -> None:
        if (packet.meta.egress_port or 0) != self.port_b:
            return
        self.b_to_a.add()
        self._transfer(packet, self.faults["b"], self.nic_b,
                       self.nic_a, self.port_a)

    def _transfer(self, packet: Packet, faults: LinkFaults, src_nic,
                  dst_nic, dst_port: int) -> None:
        linklayer = faults.linklayer
        if linklayer is None:
            data = faults.process(packet.data)
            handoff_ps = self.now + self.propagation_ps
        else:
            carried = linklayer.transmit(packet.data, self.now)
            data, handoff_ps = carried if carried is not None else (None, 0)
        if data is None:
            reason = ("down" if faults.down
                      else "ll_gave_up" if linklayer is not None else "loss")
            _trace_wire_drop(src_nic, packet, faults.label, self.now, reason)
            return
        meta = packet.meta
        self.sim.schedule_at(
            handoff_ps, self._deliver, dst_nic, dst_port,
            _refresh_packet(
                data,
                packet.kind,
                self.now,
                meta.tenant,
                meta.annotations.get("request_ctx"),
                meta.annotations.get("e2e_t0"),
                getattr(meta.annotations.get("__int__"), "carry", None),
            ),
        )

    @staticmethod
    def _deliver(nic, port: int, packet: Packet) -> None:
        nic.inject(packet, port)


@dataclass
class PacketCapsule:
    """A frame in transit between shards: everything a :class:`Wire`
    would carry across, in picklable form.

    ``arrival_ps`` is the absolute delivery timestamp (TX time plus the
    wire's propagation delay); ``link_seq`` is the per-boundary transmit
    sequence number, used to keep same-instant deliveries on one wire in
    FIFO order after the batch crosses process boundaries.

    ``request_ctx`` and ``e2e_t0`` mirror the annotations a monolithic
    :class:`Wire` preserves; in a sharded run they must be picklable.
    ``int_state`` carries the side-channel INT hop stack (a plain tuple
    of record tuples -- picklable by construction); in-band INT stacks
    ride inside ``data`` instead.
    """

    data: bytes
    kind: str
    created_ps: int
    arrival_ps: int
    link_seq: int
    tenant: Optional[int] = None
    request_ctx: Any = None
    e2e_t0: Any = None
    int_state: Any = None


class ShardBoundary(Component):
    """One shard's half of a cross-shard wire.

    The egress side observes the local NIC's transmissions on the cabled
    port and buffers them as :class:`PacketCapsule` batches; the shard
    runner drains :meth:`take_outbox` at every window barrier and ships
    the batch to the peer shard.  The ingress side receives the peer's
    capsules via :meth:`schedule_deliveries` and injects each frame at
    its exact arrival timestamp.

    Because the conservative window protocol guarantees every capsule
    arrives at the consumer before its ``arrival_ps`` window opens, the
    receiving NIC cannot distinguish a :class:`ShardBoundary` from a real
    :class:`Wire`.
    """

    def __init__(
        self,
        sim: Simulator,
        nic,
        port: int,
        peer_nic: str,
        propagation_ps: int = DEFAULT_PROPAGATION_PS,
        name: Optional[str] = None,
        fault_label: Optional[str] = None,
    ):
        super().__init__(sim, name or f"boundary.{peer_nic}.p{port}")
        if propagation_ps <= 0:
            raise ValueError(f"{self.name}: propagation must be positive")
        self.nic = nic
        self.port = port
        self.peer_nic = peer_nic
        self.propagation_ps = propagation_ps
        self._outbox: List[PacketCapsule] = []
        self._tx_seq = 0
        self.tx_captured = Counter(f"{self.name}.tx")
        self.rx_delivered = Counter(f"{self.name}.rx")
        #: TX-direction fault state; ``fault_label`` must match the
        #: monolithic Wire's label for this direction so fault stats and
        #: telemetry stay mode-independent.
        self.faults = LinkFaults(fault_label or self.name)
        nic.on_transmit(self._capture)

    # -- fault arming (repro.faults.rack) -------------------------------

    def set_loss(self, drop_p: float, corrupt_p: float, rng) -> None:
        """Arm Bernoulli loss on the locally-transmitting direction."""
        self.faults.set_loss(drop_p, corrupt_p, rng)

    def set_down(self, down: bool) -> None:
        """Cut (or restore) the locally-transmitting direction.

        The peer shard arms its own half at the same fault timestamp, so
        the whole cable goes down exactly as in the monolithic run.
        """
        self.faults.down = down

    def set_linklayer(self, params: dict) -> None:
        """Arm link-local repair on the locally-transmitting direction.

        The repair trajectory is computed entirely at TX time (see
        :mod:`repro.reliability.linklayer`), so the capsule simply ships
        with the post-repair handoff timestamp -- the peer shard needs
        no protocol state at all, and conservative windows stay safe
        because repair only ever *adds* delay beyond the propagation
        lookahead.
        """
        arm_linklayer(self.faults, self.nic, self.propagation_ps, params)

    def wire_stats(self) -> Dict[str, Dict[str, int]]:
        return {self.faults.label: self.faults.stats()}

    # -- egress ---------------------------------------------------------

    def _capture(self, packet: Packet) -> None:
        if (packet.meta.egress_port or 0) != self.port:
            return
        linklayer = self.faults.linklayer
        if linklayer is None:
            data = self.faults.process(packet.data)
            handoff_ps = self.now + self.propagation_ps
        else:
            carried = linklayer.transmit(packet.data, self.now)
            data, handoff_ps = carried if carried is not None else (None, 0)
        if data is None:
            reason = ("down" if self.faults.down
                      else "ll_gave_up" if linklayer is not None else "loss")
            _trace_wire_drop(self.nic, packet, self.faults.label, self.now,
                             reason)
            return
        meta = packet.meta
        self._outbox.append(PacketCapsule(
            data=data,
            kind=packet.kind.value,
            created_ps=self.now,
            arrival_ps=handoff_ps,
            link_seq=self._tx_seq,
            tenant=meta.tenant,
            request_ctx=meta.annotations.get("request_ctx"),
            e2e_t0=meta.annotations.get("e2e_t0"),
            int_state=getattr(meta.annotations.get("__int__"), "carry",
                              None),
        ))
        self._tx_seq += 1
        self.tx_captured.add()

    def take_outbox(self) -> List[PacketCapsule]:
        """Drain the egress batch accumulated during the last window."""
        batch, self._outbox = self._outbox, []
        return batch

    # -- ingress --------------------------------------------------------

    def schedule_deliveries(self, capsules: List[PacketCapsule]) -> None:
        """Schedule every received capsule at its exact arrival time.

        Capsules are ordered by ``(arrival_ps, link_seq)`` before
        scheduling so simultaneous arrivals on this wire fire in the FIFO
        order the monolithic wire would have produced.
        """
        for capsule in sorted(
            capsules, key=lambda c: (c.arrival_ps, c.link_seq)
        ):
            self.sim.schedule_at(capsule.arrival_ps, self._deliver, capsule)

    def _deliver(self, capsule: PacketCapsule) -> None:
        self.rx_delivered.add()
        self.nic.inject(
            _refresh_packet(
                capsule.data,
                MessageKind(capsule.kind),
                capsule.created_ps,
                capsule.tenant,
                capsule.request_ctx,
                capsule.e2e_t0,
                capsule.int_state,
            ),
            self.port,
        )
