"""A point-to-point external wire connecting two NICs.

Lets experiments build the full picture the paper's introduction sketches
-- clients talking to a PANIC-equipped server across a network -- by
cabling the TX side of one NIC to the RX side of another, with a
configurable one-way propagation delay (rack-local ~500 ns, cross-DC
~micro/milliseconds for the WAN tenants of section 2.2).

Both ends expose the common NIC surface this library uses everywhere
(``on_transmit`` to observe egress, ``inject`` to offer ingress), so any
pair of PANIC/baseline NICs can be cabled.

:class:`ShardBoundary` is the sharded-execution variant (see
:mod:`repro.sim.shard`): one *half* of a wire whose far end lives in
another worker process.  Egress frames are captured into per-window
batches of picklable :class:`PacketCapsule` records instead of being
scheduled locally; ingress capsules received at a window barrier are
scheduled for delivery at exactly the timestamp the monolithic
:class:`Wire` would have used, so the sharded run stays bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Optional

from repro.packet.packet import MessageKind, Packet
from repro.sim.clock import NS
from repro.sim.kernel import Component, Simulator
from repro.sim.stats import Counter

#: Rack-local one-way propagation (a few meters of fibre + PHY).
DEFAULT_PROPAGATION_PS = 500 * NS


def _refresh_packet(
    data: bytes,
    kind: MessageKind,
    created_ps: int,
    tenant: Optional[int],
    request_ctx: Any,
    e2e_t0: Any,
) -> Packet:
    """A frame entering a new NIC is a new packet life: fresh metadata,
    same bytes.  Shared by :class:`Wire` and :class:`ShardBoundary` so
    both execution modes hand the receiving NIC an identical packet."""
    fresh = Packet(data, kind)
    fresh.meta.created_ps = created_ps
    fresh.meta.tenant = tenant
    if request_ctx is not None:
        fresh.meta.annotations["request_ctx"] = request_ctx
    if e2e_t0 is not None:
        fresh.meta.annotations["e2e_t0"] = e2e_t0
    return fresh


class Wire(Component):
    """A full-duplex cable between two NICs."""

    def __init__(
        self,
        sim: Simulator,
        nic_a,
        nic_b,
        name: str = "wire",
        propagation_ps: int = DEFAULT_PROPAGATION_PS,
        port_a: int = 0,
        port_b: int = 0,
    ):
        super().__init__(sim, name)
        if propagation_ps < 0:
            raise ValueError(f"{name}: negative propagation delay")
        self.nic_a = nic_a
        self.nic_b = nic_b
        self.propagation_ps = propagation_ps
        self.port_a = port_a
        self.port_b = port_b
        self.a_to_b = Counter(f"{name}.a_to_b")
        self.b_to_a = Counter(f"{name}.b_to_a")
        nic_a.on_transmit(self._from_a)
        nic_b.on_transmit(self._from_b)

    def _refresh(self, packet: Packet) -> Packet:
        meta = packet.meta
        return _refresh_packet(
            packet.data,
            packet.kind,
            self.now,
            meta.tenant,
            meta.annotations.get("request_ctx"),
            meta.annotations.get("e2e_t0"),
        )

    def _from_a(self, packet: Packet) -> None:
        if (packet.meta.egress_port or 0) != self.port_a:
            return  # a different cable serves that port
        self.a_to_b.add()
        self.schedule(
            self.propagation_ps, self._deliver, self.nic_b, self.port_b,
            self._refresh(packet),
        )

    def _from_b(self, packet: Packet) -> None:
        if (packet.meta.egress_port or 0) != self.port_b:
            return
        self.b_to_a.add()
        self.schedule(
            self.propagation_ps, self._deliver, self.nic_a, self.port_a,
            self._refresh(packet),
        )

    @staticmethod
    def _deliver(nic, port: int, packet: Packet) -> None:
        nic.inject(packet, port)


@dataclass
class PacketCapsule:
    """A frame in transit between shards: everything a :class:`Wire`
    would carry across, in picklable form.

    ``arrival_ps`` is the absolute delivery timestamp (TX time plus the
    wire's propagation delay); ``link_seq`` is the per-boundary transmit
    sequence number, used to keep same-instant deliveries on one wire in
    FIFO order after the batch crosses process boundaries.

    ``request_ctx`` and ``e2e_t0`` mirror the annotations a monolithic
    :class:`Wire` preserves; in a sharded run they must be picklable.
    """

    data: bytes
    kind: str
    created_ps: int
    arrival_ps: int
    link_seq: int
    tenant: Optional[int] = None
    request_ctx: Any = None
    e2e_t0: Any = None


class ShardBoundary(Component):
    """One shard's half of a cross-shard wire.

    The egress side observes the local NIC's transmissions on the cabled
    port and buffers them as :class:`PacketCapsule` batches; the shard
    runner drains :meth:`take_outbox` at every window barrier and ships
    the batch to the peer shard.  The ingress side receives the peer's
    capsules via :meth:`schedule_deliveries` and injects each frame at
    its exact arrival timestamp.

    Because the conservative window protocol guarantees every capsule
    arrives at the consumer before its ``arrival_ps`` window opens, the
    receiving NIC cannot distinguish a :class:`ShardBoundary` from a real
    :class:`Wire`.
    """

    def __init__(
        self,
        sim: Simulator,
        nic,
        port: int,
        peer_nic: str,
        propagation_ps: int = DEFAULT_PROPAGATION_PS,
        name: Optional[str] = None,
    ):
        super().__init__(sim, name or f"boundary.{peer_nic}.p{port}")
        if propagation_ps <= 0:
            raise ValueError(f"{self.name}: propagation must be positive")
        self.nic = nic
        self.port = port
        self.peer_nic = peer_nic
        self.propagation_ps = propagation_ps
        self._outbox: List[PacketCapsule] = []
        self._tx_seq = 0
        self.tx_captured = Counter(f"{self.name}.tx")
        self.rx_delivered = Counter(f"{self.name}.rx")
        nic.on_transmit(self._capture)

    # -- egress ---------------------------------------------------------

    def _capture(self, packet: Packet) -> None:
        if (packet.meta.egress_port or 0) != self.port:
            return
        meta = packet.meta
        self._outbox.append(PacketCapsule(
            data=packet.data,
            kind=packet.kind.value,
            created_ps=self.now,
            arrival_ps=self.now + self.propagation_ps,
            link_seq=self._tx_seq,
            tenant=meta.tenant,
            request_ctx=meta.annotations.get("request_ctx"),
            e2e_t0=meta.annotations.get("e2e_t0"),
        ))
        self._tx_seq += 1
        self.tx_captured.add()

    def take_outbox(self) -> List[PacketCapsule]:
        """Drain the egress batch accumulated during the last window."""
        batch, self._outbox = self._outbox, []
        return batch

    # -- ingress --------------------------------------------------------

    def schedule_deliveries(self, capsules: List[PacketCapsule]) -> None:
        """Schedule every received capsule at its exact arrival time.

        Capsules are ordered by ``(arrival_ps, link_seq)`` before
        scheduling so simultaneous arrivals on this wire fire in the FIFO
        order the monolithic wire would have produced.
        """
        for capsule in sorted(
            capsules, key=lambda c: (c.arrival_ps, c.link_seq)
        ):
            self.sim.schedule_at(capsule.arrival_ps, self._deliver, capsule)

    def _deliver(self, capsule: PacketCapsule) -> None:
        self.rx_delivered.add()
        self.nic.inject(
            _refresh_packet(
                capsule.data,
                MessageKind(capsule.kind),
                capsule.created_ps,
                capsule.tenant,
                capsule.request_ctx,
                capsule.e2e_t0,
            ),
            self.port,
        )
