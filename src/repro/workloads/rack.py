"""Rack-scale multi-NIC workloads for the sharded execution layer.

Builds :class:`~repro.core.topology.RackTopology` descriptions whose NICs
are full PANIC instances driving traffic at each other over per-pair
cables -- the multi-node regimes SuperNIC and PsPIN evaluate, scaled to
N NICs on N cores by :mod:`repro.sim.shard`.

Patterns:

* ``"symmetric"`` -- every NIC streams to every other NIC, so each node
  is simultaneously an (N-1)-way incast receiver and an (N-1)-flow
  sender.  Load is perfectly balanced across shards, which is what the
  speedup benchmark wants.
* ``"fanin"`` -- classic incast: NICs 1..N-1 all stream at NIC 0.  The
  receiver shard dominates, demonstrating the protocol under imbalance.

Each directed flow ``src -> dst`` gets its own flow-identity class the
sender keys its TX route on to pick the egress cable, and the receiver
keys a per-source slack on so the on-NIC scheduler sees distinct
tenants.  Two encodings exist:

* ``flow_id="dscp"`` -- the historical 6-bit DSCP encoding
  (``route_dscp_tx``/``set_dscp_slack``), capped at 7 NICs.
* ``flow_id="tag"`` -- a VXLAN-style 16-bit tag leading the UDP payload
  of :data:`~repro.packet.headers.RACK_TAG_UDP_PORT` traffic, extracted
  by the parser's ``rack_tag`` state and steered by the ``tag_route`` /
  ``tag_slack`` tables (``route_tag_tx``/``set_tag_slack``).  Scales
  rack rows to :data:`MAX_TAG_RACK_NICS` NICs; the NIC's NoC mesh is
  automatically sized up to seat one MAC per peer.

``flow_id="auto"`` (the default) picks DSCP through 7 NICs for exact
backward compatibility and the tag beyond.

Frames carry an 8-byte sequence number plus the 2-byte source index in
the UDP payload (after the tag shim, in tag mode), so receivers can
attribute every delivery exactly -- the shard equivalence tests compare
these ``(src, seq, t, queue)`` tuples bit-for-bit between execution
modes.

``build_rack_nic`` is module-level and picklable by reference, as the
shard workers require.
"""

from __future__ import annotations

from typing import Callable, Tuple

from repro.core.config import PanicConfig
from repro.core.panic import PanicNic
from repro.core.topology import LinkSpec, NicSpec, RackTopology
from repro.packet.builder import build_udp_frame
from repro.packet.headers import RACK_TAG_BYTES, RACK_TAG_UDP_PORT
from repro.sim.clock import US
from repro.sim.kernel import Simulator
from repro.workloads.wire import DEFAULT_PROPAGATION_PS

#: First DSCP class used for rack flows; flow (src, dst) on an N-NIC rack
#: uses ``RACK_DSCP_BASE + src * N + dst``.  DSCP is a 6-bit field, which
#: caps the all-pairs encoding at 7 NICs; larger racks carry the flow id
#: in the 16-bit payload tag instead (``flow_id="tag"``).
RACK_DSCP_BASE = 8
MAX_RACK_NICS = 7

#: First tag value used for rack flows (0 stays reserved/untagged); flow
#: (src, dst) uses ``RACK_TAG_BASE + src * N + dst``.  The 16-bit field
#: bounds all-pairs encodings at 255 NICs -- far past the mesh sizes a
#: single-host simulation can seat.
RACK_TAG_BASE = 8
MAX_TAG_RACK_NICS = 255

#: Accepted ``flow_id`` vocabulary.
FLOW_IDS = ("auto", "dscp", "tag")

#: UDP payload starts after Ethernet (14) + IPv4 (20) + UDP (8) headers.
_PAYLOAD_OFFSET = 42


def rack_port(local: int, peer: int) -> int:
    """The local Ethernet port cabled to ``peer`` in an all-pairs rack
    (each NIC has N-1 ports, one per other NIC, in peer-index order)."""
    return peer if peer < local else peer - 1


def flow_dscp(src: int, dst: int, n_nics: int) -> int:
    return RACK_DSCP_BASE + src * n_nics + dst


def flow_tag(src: int, dst: int, n_nics: int) -> int:
    return RACK_TAG_BASE + src * n_nics + dst


def resolve_flow_id(flow_id: str, nics: int) -> str:
    """Resolve ``"auto"`` to a concrete encoding and validate the cap."""
    if flow_id not in FLOW_IDS:
        raise ValueError(f"unknown flow_id {flow_id!r}; expected {FLOW_IDS}")
    if flow_id == "auto":
        flow_id = "dscp" if nics <= MAX_RACK_NICS else "tag"
    cap = MAX_RACK_NICS if flow_id == "dscp" else MAX_TAG_RACK_NICS
    if not 2 <= nics <= cap:
        raise ValueError(
            f"rack supports 2..{cap} NICs with {flow_id!r} flow identity, "
            f"got {nics}"
        )
    return flow_id


def rack_mesh_size(ports: int, offloads: int = 1, rmt_tiles: int = 1) -> int:
    """Smallest square NoC mesh seating ``ports`` MACs plus DMA, PCIe,
    the RMT tiles, and the offload lanes (never below the stock 4x4)."""
    needed = ports + 2 + rmt_tiles + offloads
    side = 4
    while side * side < needed:
        side += 1
    return side


def build_rack_nic(
    sim: Simulator,
    name: str,
    *,
    index: int,
    n_nics: int,
    frames: int,
    gap_ps: int = 2 * US,
    payload_bytes: int = 256,
    pattern: str = "symmetric",
    seed: int = 0,
    fast_path: bool = True,
    telemetry=None,
    batch: bool = False,
    flow_id: str = "auto",
    int_=None,
) -> Tuple[PanicNic, Callable[[], dict]]:
    """Build rack node ``index`` of ``n_nics``: a PANIC NIC with one port
    per peer, TX routes steering each flow's identity class (DSCP or
    payload tag) onto its cable, per-source RX slack classes, scheduled
    senders, and a delivery recorder.

    Returns ``(nic, report)`` where ``report()`` yields a picklable dict:
    ``stats`` (the NIC's stats tree), ``deliveries`` (sorted
    ``(src, seq, arrival_ps, queue)`` tuples) and ``sent``; with
    ``telemetry`` set, also ``trace`` (the NIC's canonical span list)
    and ``trace_summary`` (ring-buffer accounting incl. dropped spans);
    with ``int_`` (an :class:`~repro.telemetry.config.IntConfig`) set,
    also ``int`` (the sink's sorted postcard list -- feed it to an
    :class:`~repro.telemetry.int_.IntCollector`).
    """
    if pattern not in ("symmetric", "fanin"):
        raise ValueError(f"unknown rack pattern {pattern!r}")
    flow_id = resolve_flow_id(flow_id, n_nics)
    tagged = flow_id == "tag"
    mesh_side = rack_mesh_size(n_nics - 1)
    config = PanicConfig(
        ports=n_nics - 1,
        offloads=("checksum",),
        seed=seed + index,
        fast_path=fast_path,
        telemetry=telemetry,
        batch_execution=batch,
        mesh_width=mesh_side,
        mesh_height=mesh_side,
        int_=int_,
    )
    nic = PanicNic(sim, config, name=name)

    peers = [peer for peer in range(n_nics) if peer != index]
    for peer in peers:
        # Outbound: this flow's identity class leaves on the cable to
        # `peer`, via the checksum lane so TX exercises an offload hop
        # too.  Inbound: per-source slack, so the on-NIC scheduler treats
        # each remote sender as a distinct tenant class.
        if tagged:
            nic.control.route_tag_tx(
                flow_tag(index, peer, n_nics),
                chain=["checksum"],
                egress_port=rack_port(index, peer),
            )
            nic.control.set_tag_slack(
                flow_tag(peer, index, n_nics), (1 + peer) * 200 * US
            )
        else:
            nic.control.route_dscp_tx(
                flow_dscp(index, peer, n_nics),
                chain=["checksum"],
                egress_port=rack_port(index, peer),
            )
            nic.control.set_dscp_slack(
                flow_dscp(peer, index, n_nics), (1 + peer) * 200 * US
            )

    deliveries = []
    shim = RACK_TAG_BYTES if tagged else 0

    def on_rx(packet, queue: int) -> None:
        payload = packet.data[_PAYLOAD_OFFSET + shim:]
        seq = int.from_bytes(payload[:8], "big")
        src = int.from_bytes(payload[8:10], "big")
        deliveries.append((src, seq, sim.now, queue))

    nic.host.software_handler = on_rx

    if pattern == "symmetric":
        targets = peers
    else:  # fanin: everyone streams at NIC 0
        targets = [0] if index != 0 else []

    pad = max(0, payload_bytes - 10 - shim)
    sent = 0
    for dst in targets:
        dscp = 0 if tagged else flow_dscp(index, dst, n_nics)
        prefix = (
            flow_tag(index, dst, n_nics).to_bytes(2, "big") if tagged
            else b""
        )
        for seq in range(frames):
            payload = (
                prefix + seq.to_bytes(8, "big")
                + index.to_bytes(2, "big") + bytes(pad)
            )
            frame = build_udp_frame(
                src_mac="02:00:00:00:00:%02x" % (index + 1),
                dst_mac="02:00:00:00:00:%02x" % (dst + 1),
                src_ip=f"10.0.{index}.1",
                dst_ip=f"10.0.{dst}.1",
                src_port=40000 + index,
                dst_port=RACK_TAG_UDP_PORT if tagged else 9000,
                payload=payload,
                dscp=dscp,
                identification=seq & 0xFFFF,
            )
            # Senders are aligned across the rack on purpose: every node
            # releases frame k at the same instant, producing the incast.
            sim.schedule_at(seq * gap_ps, nic.host.enqueue_tx, frame)
            sent += 1

    total_sent = sent

    def report() -> dict:
        rep = {
            "stats": nic.stats(),
            "deliveries": sorted(deliveries),
            "sent": total_sent,
        }
        if nic.telemetry is not None:
            rep["trace"] = nic.telemetry.trace_report()
            # seen/sampled/spans/dropped_spans are simulated-state
            # counters, so the ring-buffer overflow accounting is part
            # of the mono==sharded bit-identity contract.
            rep["trace_summary"] = nic.telemetry.summary()
        if nic.int_agent is not None:
            rep["int"] = nic.int_agent.postcards()
        return rep

    return nic, report


def rack_topology(
    nics: int = 4,
    pattern: str = "symmetric",
    frames: int = 40,
    gap_ps: int = 2 * US,
    payload_bytes: int = 256,
    propagation_ps: int = DEFAULT_PROPAGATION_PS,
    seed: int = 0,
    fast_path: bool = True,
    telemetry=None,
    batch: bool = False,
    flow_id: str = "auto",
    int_=None,
) -> RackTopology:
    """An all-pairs-cabled rack of ``nics`` PANIC NICs running the given
    traffic pattern.  Every unordered pair gets one full-duplex cable;
    the port numbering is :func:`rack_port` on both ends.  ``flow_id``
    picks the flow-identity encoding (module docstring): ``"dscp"`` caps
    the rack at 7 NICs, ``"tag"`` at 255, ``"auto"`` switches at 8."""
    flow_id = resolve_flow_id(flow_id, nics)
    specs = [
        NicSpec(
            f"nic{i}",
            build_rack_nic,
            {
                "index": i,
                "n_nics": nics,
                "frames": frames,
                "gap_ps": gap_ps,
                "payload_bytes": payload_bytes,
                "pattern": pattern,
                "seed": seed,
                "fast_path": fast_path,
                "telemetry": telemetry,
                "batch": batch,
                "flow_id": flow_id,
                "int_": int_,
            },
        )
        for i in range(nics)
    ]
    links = [
        LinkSpec(
            f"nic{i}", f"nic{j}",
            port_a=rack_port(i, j),
            port_b=rack_port(j, i),
            propagation_ps=propagation_ps,
        )
        for i in range(nics)
        for j in range(i + 1, nics)
    ]
    return RackTopology(specs, links)
