"""Workload generation: traffic sources, the multi-tenant KVS, DoS floods.

These drive every experiment.  Sources inject byte-accurate frames into a
NIC (PANIC or a baseline) through its ``inject`` method; observers parse
egress frames and collect per-tenant latency/throughput statistics.
"""

from repro.workloads.generator import (
    CbrSource,
    OnOffSource,
    PoissonSource,
    TrafficSource,
    simple_udp_factory,
)
from repro.workloads.kvs import (
    KvsClient,
    KvsWorkload,
    TenantSpec,
)
from repro.workloads.dos import DosFlood
from repro.workloads.traces import TraceRecorder, TraceReplayer, TraceRecord
from repro.workloads.wire import PacketCapsule, ShardBoundary, Wire
from repro.workloads.rack import build_rack_nic, rack_topology

__all__ = [
    "CbrSource",
    "DosFlood",
    "KvsClient",
    "KvsWorkload",
    "OnOffSource",
    "PacketCapsule",
    "PoissonSource",
    "ShardBoundary",
    "TenantSpec",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayer",
    "TrafficSource",
    "Wire",
    "build_rack_nic",
    "rack_topology",
    "simple_udp_factory",
]
