"""Workload generation: traffic sources, the multi-tenant KVS, DoS floods.

These drive every experiment.  Sources inject byte-accurate frames into a
NIC (PANIC or a baseline) through its ``inject`` method; observers parse
egress frames and collect per-tenant latency/throughput statistics.
"""

from repro.workloads.generator import (
    CbrSource,
    OnOffSource,
    PoissonSource,
    TrafficSource,
    simple_udp_factory,
)
from repro.workloads.kvs import (
    KvsClient,
    KvsWorkload,
    TenantSpec,
)
from repro.workloads.dos import DosFlood
from repro.workloads.traces import TraceRecorder, TraceReplayer, TraceRecord
from repro.workloads.wire import Wire

__all__ = [
    "CbrSource",
    "DosFlood",
    "KvsClient",
    "KvsWorkload",
    "OnOffSource",
    "PoissonSource",
    "TenantSpec",
    "TraceRecord",
    "TraceRecorder",
    "TraceReplayer",
    "TrafficSource",
    "Wire",
    "simple_udp_factory",
]
