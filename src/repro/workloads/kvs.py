"""The multi-tenant key-value store workload (sections 2.2 / 3.2).

A geodistributed, multi-tenant DynamoDB-style KVS: tenants issue GET/SET
requests over UDP with Zipf-popular keys; some tenants are WAN-facing
(their traffic is ESP-encrypted and must pass the IPSec engine); some are
latency-sensitive, others run bulk throughput.  :class:`KvsWorkload`
wires the sources to a NIC, tracks outstanding requests by id, and
collects per-tenant response-latency histograms from egress frames.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.engines.ipsec import IpsecEngine, IpsecSa
from repro.packet.builder import build_kv_request_frame, parse_frame
from repro.packet.headers import HeaderError
from repro.packet.kv import KvOpcode, KvRequest, KvResponse
from repro.packet.packet import Packet
from repro.sim.clock import SEC, US
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.sim.stats import Counter, LatencyTracker
from repro.workloads.generator import PoissonSource


@dataclass
class TenantSpec:
    """One tenant's traffic profile."""

    tenant_id: int
    rate_pps: float
    get_fraction: float = 0.9
    key_space: int = 1000
    zipf_alpha: float = 0.99
    value_bytes: int = 128
    wan: bool = False  # WAN tenants need IPSec
    latency_sensitive: bool = False
    #: Offloads this tenant's packets need, for baseline NICs.
    needs: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not 0 <= self.get_fraction <= 1:
            raise ValueError(f"get_fraction must be in [0,1]: {self.get_fraction}")
        if self.rate_pps <= 0 or self.key_space <= 0 or self.value_bytes < 0:
            raise ValueError("tenant rates/sizes must be positive")

    def key(self, index: int) -> bytes:
        return b"t%d/key%06d" % (self.tenant_id, index)


class KvsClient:
    """Generates one tenant's requests and matches its responses."""

    def __init__(
        self,
        sim: Simulator,
        spec: TenantSpec,
        inject: Callable[[Packet], int],
        rng: SeededRng,
        ipsec: Optional[IpsecEngine] = None,
        spi: Optional[int] = None,
        count: Optional[int] = None,
        stop_ps: Optional[int] = None,
    ):
        self.sim = sim
        self.spec = spec
        self.rng = rng
        self.ipsec = ipsec
        self.spi = spi
        self._next_request_id = spec.tenant_id << 20
        self._outstanding: Dict[int, int] = {}  # request_id -> created_ps
        self.latency = LatencyTracker(f"tenant{spec.tenant_id}.latency")
        self.requests = Counter(f"tenant{spec.tenant_id}.requests")
        self.responses = Counter(f"tenant{spec.tenant_id}.responses")
        self.source = PoissonSource(
            sim,
            f"kvs.t{spec.tenant_id}.src",
            inject,
            self._make_packet,
            rate_pps=spec.rate_pps,
            rng=rng.fork("arrivals"),
            count=count,
            stop_ps=stop_ps,
        )

    def start(self, at_ps: int = 0) -> None:
        self.source.start(at_ps)

    # ------------------------------------------------------------------
    # Request generation
    # ------------------------------------------------------------------

    def _make_packet(self, seq: int) -> Packet:
        spec = self.spec
        request_id = self._next_request_id
        self._next_request_id += 1
        key_index = self.rng.zipf_index(spec.key_space, spec.zipf_alpha)
        if self.rng.random() < spec.get_fraction:
            request = KvRequest(KvOpcode.GET, spec.tenant_id, request_id, spec.key(key_index))
        else:
            value = self.rng.bytes(spec.value_bytes)
            request = KvRequest(
                KvOpcode.SET, spec.tenant_id, request_id, spec.key(key_index), value
            )
        packet = build_kv_request_frame(
            request,
            src_ip=f"10.{spec.tenant_id % 256}.0.1",
            dscp=spec.tenant_id % 64,
        )
        if spec.wan and self.ipsec is not None and self.spi is not None:
            # The client encrypts before the frame hits the NIC; reuse the
            # engine's cipher so the NIC can decrypt with the same SA.
            packet.meta.annotations["ipsec_spi"] = self.spi
            packet = self.ipsec.encrypt(packet, self.spi)
        packet.meta.annotations["needs"] = spec.needs
        packet.meta.annotations["request_ctx"] = request_id
        self._outstanding[request_id] = self.sim.now
        self.requests.add()
        return packet

    # ------------------------------------------------------------------
    # Response collection
    # ------------------------------------------------------------------

    def observe_response(self, response: KvResponse) -> bool:
        """Record latency if this response answers one of our requests."""
        created = self._outstanding.pop(response.request_id, None)
        if created is None:
            return False
        self.responses.add()
        self.latency.observe(created, self.sim.now)
        return True

    @property
    def outstanding(self) -> int:
        return len(self._outstanding)


class KvsWorkload:
    """The full multi-tenant workload bound to one NIC."""

    def __init__(
        self,
        sim: Simulator,
        nic,
        tenants: List[TenantSpec],
        seed: int = 0,
        requests_per_tenant: Optional[int] = 200,
        stop_ps: Optional[int] = None,
        ipsec: Optional[IpsecEngine] = None,
        wan_spi_base: int = 0x1000,
    ):
        self.sim = sim
        self.nic = nic
        self.rng = SeededRng(seed)
        self.clients: Dict[int, KvsClient] = {}
        self.unmatched_responses = Counter("kvs.unmatched")
        for spec in tenants:
            spi = None
            if spec.wan and ipsec is not None:
                spi = wan_spi_base + spec.tenant_id
                ipsec.install_sa(
                    IpsecSa(
                        spi=spi,
                        key=b"key-tenant-%d" % spec.tenant_id,
                        tunnel_src=f"172.16.{spec.tenant_id % 256}.1",
                        tunnel_dst="172.16.255.1",
                    )
                )
            self.clients[spec.tenant_id] = KvsClient(
                sim,
                spec,
                inject=nic.inject,
                rng=self.rng.fork(f"tenant{spec.tenant_id}"),
                ipsec=ipsec,
                spi=spi,
                count=requests_per_tenant,
                stop_ps=stop_ps,
            )
        nic.on_transmit(self._on_transmit)

    def start(self, at_ps: int = 0) -> None:
        for client in self.clients.values():
            client.start(at_ps)

    def _on_transmit(self, packet: Packet) -> None:
        try:
            frame = parse_frame(packet.data)
            if not frame.is_kv or not frame.payload:
                return
            if frame.payload[0] != KvOpcode.RESPONSE:
                return
            response = frame.kv_response()
        except HeaderError:
            return
        client = self.clients.get(response.tenant)
        if client is None or not client.observe_response(response):
            self.unmatched_responses.add()

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------

    def populate_store(self, values_per_tenant: int = 100) -> None:
        """Preload host memory so GETs have something to find."""
        for tenant_id, client in self.clients.items():
            spec = client.spec
            for index in range(min(values_per_tenant, spec.key_space)):
                self.nic.host.store(
                    spec.key(index), b"v" * spec.value_bytes
                )

    def warm_nic_cache(self, cache, hot_keys: int = 10) -> None:
        """Preload the on-NIC KV cache with each tenant's hottest keys."""
        for client in self.clients.values():
            spec = client.spec
            for index in range(min(hot_keys, spec.key_space)):
                cache.cache_put(spec.key(index), b"v" * spec.value_bytes)

    def summary(self) -> Dict[int, Dict[str, float]]:
        """Per-tenant latency/throughput summary."""
        out = {}
        for tenant_id, client in self.clients.items():
            entry: Dict[str, float] = {
                "requests": client.requests.value,
                "responses": client.responses.value,
                "outstanding": client.outstanding,
            }
            if client.latency.count:
                entry["latency_us_p50"] = client.latency.percentile(50) / US
                entry["latency_us_p99"] = client.latency.percentile(99) / US
                entry["latency_us_mean"] = client.latency.mean / US
            out[tenant_id] = entry
        return out
