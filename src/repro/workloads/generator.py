"""Traffic sources: constant bit rate, Poisson, and on/off bursts.

A source owns a packet factory (``seq -> Packet``) and an injection
function (``packet -> arrival_ps``), so the same source drives PANIC,
any baseline NIC, or a bare mesh endpoint.
"""

from __future__ import annotations

import zlib
from typing import Callable, Optional

from repro.packet.builder import build_udp_frame
from repro.packet.packet import Packet
from repro.sim.clock import SEC
from repro.sim.kernel import Component, Simulator
from repro.sim.rng import SeededRng
from repro.sim.stats import Counter

#: A packet factory: sequence number -> fresh Packet.
PacketFactory = Callable[[int], Packet]
#: An injection sink: packet -> simulated arrival time.
InjectFn = Callable[[Packet], int]


def simple_udp_factory(
    payload_bytes: int = 64,
    src_ip: str = "10.0.0.1",
    dst_ip: str = "10.0.0.2",
    dst_port: int = 9000,
    dscp: int = 0,
) -> PacketFactory:
    """A factory producing fixed-size UDP frames with a sequence cookie."""
    if payload_bytes < 8:
        raise ValueError(f"payload must hold the 8-byte cookie: {payload_bytes}")

    def factory(seq: int) -> Packet:
        payload = seq.to_bytes(8, "big") + bytes(payload_bytes - 8)
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01",
            dst_mac="02:00:00:00:00:02",
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=40000 + (seq % 1000),
            dst_port=dst_port,
            payload=payload,
            dscp=dscp,
            identification=seq & 0xFFFF,
        )
        packet = Packet(frame)
        packet.meta.annotations["seq"] = seq
        return packet

    return factory


#: The classic IMIX blend: (payload bytes to reach the frame size, weight).
#: 64 B : 570 B : 1500 B frames at 7 : 4 : 1.
IMIX_BLEND = ((64, 7), (570, 4), (1500, 1))


def imix_factory(
    rng: Optional[SeededRng] = None,
    src_ip: str = "10.0.0.1",
    dst_ip: str = "10.0.0.2",
    dst_port: int = 9000,
    dscp: int = 0,
) -> PacketFactory:
    """A factory producing the standard IMIX frame-size mix.

    Frame sizes follow the 7:4:1 blend of 64/570/1500-byte frames used
    across the industry for "realistic" mixed traffic.
    """
    rng = rng if rng is not None else SeededRng(0xD1)
    sizes: list = []
    for frame_bytes, weight in IMIX_BLEND:
        sizes.extend([frame_bytes] * weight)
    header_overhead = 14 + 20 + 8  # eth + ipv4 + udp

    def factory(seq: int) -> Packet:
        frame_bytes = rng.choice(sizes)
        payload_bytes = max(8, frame_bytes - header_overhead)
        payload = seq.to_bytes(8, "big") + bytes(payload_bytes - 8)
        frame = build_udp_frame(
            src_mac="02:00:00:00:00:01",
            dst_mac="02:00:00:00:00:02",
            src_ip=src_ip,
            dst_ip=dst_ip,
            src_port=40000 + (seq % 1000),
            dst_port=dst_port,
            payload=payload,
            dscp=dscp,
            identification=seq & 0xFFFF,
        )
        packet = Packet(frame)
        packet.meta.annotations["seq"] = seq
        return packet

    return factory


class TrafficSource(Component):
    """Base source: schedules itself, tracks what it injected."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        inject: InjectFn,
        factory: PacketFactory,
        count: Optional[int] = None,
        stop_ps: Optional[int] = None,
    ):
        super().__init__(sim, name)
        if count is None and stop_ps is None:
            raise ValueError(f"{name}: need a packet count or a stop time")
        self.inject = inject
        self.factory = factory
        self.count = count
        self.stop_ps = stop_ps
        self._seq = 0
        self.injected = Counter(f"{name}.injected")
        self._started = False

    def start(self, at_ps: int = 0) -> None:
        if self._started:
            raise RuntimeError(f"{self.name}: source already started")
        self._started = True
        self.schedule(max(0, at_ps - self.now), self._tick)

    def _tick(self) -> None:
        if self.count is not None and self._seq >= self.count:
            return
        if self.stop_ps is not None and self.now >= self.stop_ps:
            return
        packet = self.factory(self._seq)
        packet.meta.created_ps = self.now
        self._seq += 1
        self.injected.add()
        self.inject(packet)
        gap = self.next_gap_ps()
        self.schedule(max(1, gap), self._tick)

    def next_gap_ps(self) -> int:
        raise NotImplementedError


class CbrSource(TrafficSource):
    """Constant packet rate (deterministic inter-arrival gaps)."""

    def __init__(self, sim, name, inject, factory, rate_pps: float, **kwargs):
        super().__init__(sim, name, inject, factory, **kwargs)
        if rate_pps <= 0:
            raise ValueError(f"{name}: rate must be positive, got {rate_pps}")
        self.gap_ps = int(SEC / rate_pps)

    def next_gap_ps(self) -> int:
        return self.gap_ps


class PoissonSource(TrafficSource):
    """Poisson arrivals (exponential inter-arrival gaps)."""

    def __init__(
        self, sim, name, inject, factory, rate_pps: float,
        rng: Optional[SeededRng] = None, **kwargs,
    ):
        super().__init__(sim, name, inject, factory, **kwargs)
        if rate_pps <= 0:
            raise ValueError(f"{name}: rate must be positive, got {rate_pps}")
        self.mean_gap_ps = SEC / rate_pps
        # zlib.crc32, not hash(): str hashing is randomized per process.
        self.rng = rng if rng is not None else SeededRng(
            zlib.crc32(name.encode("utf-8")) & 0xFFFF)

    def next_gap_ps(self) -> int:
        return int(self.rng.exponential(self.mean_gap_ps))


class OnOffSource(TrafficSource):
    """Bursty traffic: CBR during ON periods, silent during OFF periods."""

    def __init__(
        self, sim, name, inject, factory, rate_pps: float,
        on_ps: int, off_ps: int, **kwargs,
    ):
        super().__init__(sim, name, inject, factory, **kwargs)
        if rate_pps <= 0 or on_ps <= 0 or off_ps < 0:
            raise ValueError(f"{name}: bad on/off parameters")
        self.gap_ps = int(SEC / rate_pps)
        self.on_ps = on_ps
        self.off_ps = off_ps
        self._phase_start = 0

    def next_gap_ps(self) -> int:
        elapsed = self.now - self._phase_start
        if elapsed + self.gap_ps <= self.on_ps:
            return self.gap_ps
        # Burst over: sleep through the OFF period, start a new burst.
        self._phase_start = self._phase_start + self.on_ps + self.off_ps
        return max(1, self._phase_start - self.now)
