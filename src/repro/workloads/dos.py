"""DoS flood traffic, for the memory-pressure / lossy-drop experiments.

Section 6 asks how to drop "packets from a DOS attack" while protecting
lossless internal messages.  The flood generates high-rate junk UDP
marked droppable (via a dedicated DSCP the RMT program maps to the
droppable flag and worst-case slack), so PANIC's schedulers shed it
first under pressure.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.packet.builder import build_udp_frame
from repro.packet.packet import Packet
from repro.sim.kernel import Simulator
from repro.sim.rng import SeededRng
from repro.workloads.generator import PoissonSource

#: The DSCP value reference programs treat as "attack-class, droppable".
DOS_DSCP = 63


class DosFlood:
    """A high-rate junk-UDP source aimed at one NIC port."""

    def __init__(
        self,
        sim: Simulator,
        inject: Callable[[Packet], int],
        rate_pps: float,
        payload_bytes: int = 64,
        seed: int = 666,
        count: Optional[int] = None,
        stop_ps: Optional[int] = None,
        name: str = "dos",
    ):
        self.rng = SeededRng(seed)
        self.payload_bytes = payload_bytes
        self.source = PoissonSource(
            sim,
            f"{name}.src",
            inject,
            self._make_packet,
            rate_pps=rate_pps,
            rng=self.rng.fork("arrivals"),
            count=count,
            stop_ps=stop_ps,
        )

    def start(self, at_ps: int = 0) -> None:
        self.source.start(at_ps)

    @property
    def injected(self) -> int:
        return self.source.injected.value

    def _make_packet(self, seq: int) -> Packet:
        frame = build_udp_frame(
            src_mac="02:66:00:00:00:01",
            dst_mac="02:00:00:00:00:02",
            src_ip=f"198.51.{seq % 256}.{(seq * 7) % 256}",  # spoofed
            dst_ip="10.0.0.2",
            src_port=1024 + (seq % 60000),
            dst_port=80,
            payload=self.rng.bytes(self.payload_bytes),
            dscp=DOS_DSCP,
            identification=seq & 0xFFFF,
        )
        packet = Packet(frame)
        packet.meta.annotations["dos"] = True
        return packet
