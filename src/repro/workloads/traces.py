"""Packet trace record and replay.

Records (timestamp, frame bytes, annotations) tuples from any NIC's
ingress or egress, and replays them -- optionally time-scaled -- into
another NIC.  Useful for A/B runs: capture one workload once, feed the
identical byte stream to PANIC and to each baseline.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.packet.packet import Packet
from repro.sim.kernel import Component, Simulator
from repro.sim.stats import Counter


@dataclass
class TraceRecord:
    """One captured frame."""

    timestamp_ps: int
    data: bytes
    annotations: Dict[str, object] = field(default_factory=dict)


class TraceRecorder:
    """Collects frames with their injection timestamps."""

    def __init__(self, sim: Simulator):
        self.sim = sim
        self.records: List[TraceRecord] = []

    def capture(self, packet: Packet) -> None:
        """Record a frame (hook this into a source or ``on_transmit``)."""
        keep = {
            key: value
            for key, value in packet.meta.annotations.items()
            if isinstance(value, (int, float, str, bytes, tuple, bool))
        }
        self.records.append(TraceRecord(self.sim.now, packet.data, keep))

    def __len__(self) -> int:
        return len(self.records)


class TraceReplayer(Component):
    """Replays a recorded trace into a NIC at original (scaled) timing."""

    def __init__(
        self,
        sim: Simulator,
        records: List[TraceRecord],
        inject: Callable[[Packet], int],
        name: str = "replayer",
        time_scale: float = 1.0,
    ):
        super().__init__(sim, name)
        if time_scale <= 0:
            raise ValueError(f"{name}: time scale must be positive")
        self.records = list(records)
        self.inject = inject
        self.time_scale = time_scale
        self.replayed = Counter(f"{name}.replayed")

    def start(self, at_ps: int = 0) -> None:
        if not self.records:
            return
        base = self.records[0].timestamp_ps
        for record in self.records:
            offset = int((record.timestamp_ps - base) * self.time_scale)
            self.schedule(max(0, at_ps + offset - self.now), self._emit, record)

    def _emit(self, record: TraceRecord) -> None:
        packet = Packet(record.data)
        packet.meta.created_ps = self.now
        packet.meta.annotations.update(record.annotations)
        self.replayed.add()
        self.inject(packet)
